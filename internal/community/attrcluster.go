package community

// Attribute clustering: the type-level community view. Label propagation
// finds fine-grained graph communities, but two columns of the same semantic
// type that share only a modest slice of a large vocabulary legitimately
// form separate graph communities — which over-counts a homograph's
// meanings. Clustering attribute nodes by value-set overlap (the same
// signal D4 uses for domains) recovers the semantic-type granularity the
// paper's "a community represents a meaning" intuition refers to.

// AttrClustering assigns every attribute node to a type cluster.
type AttrClustering struct {
	// ClusterOf maps attribute index (0..NumAttrs-1, i.e. node id minus
	// NumValues) to a compact cluster id.
	ClusterOf []int32
	// NumClusters is the number of distinct clusters.
	NumClusters int
}

// ClusterAttributes groups attributes whose value sets overlap: two
// attributes land in one cluster when they share at least minIntersection
// values and the overlap coefficient |A∩B|/min(|A|,|B|) reaches minOverlap.
// Non-positive arguments select the defaults 0.15 and 2 (see the rationale
// in internal/d4).
func ClusterAttributes(g BipartiteGraph, minOverlap float64, minIntersection int) *AttrClustering {
	if minOverlap <= 0 {
		minOverlap = 0.15
	}
	if minIntersection <= 0 {
		minIntersection = 2
	}
	nVal := g.NumValues()
	nAttr := g.NumNodes() - nVal

	parent := make([]int32, nAttr)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	// Candidate pairs come from shared values; very common values (null
	// markers, strong homographs) are skipped for pair generation just like
	// D4's robust signatures discount them.
	type pair struct{ a, b int32 }
	tried := make(map[pair]struct{})
	for u := 0; u < nVal; u++ {
		attrs := g.Neighbors(int32(u))
		if len(attrs) < 2 || len(attrs) > 64 {
			continue
		}
		for x := 0; x < len(attrs); x++ {
			for y := x + 1; y < len(attrs); y++ {
				a := attrs[x] - int32(nVal)
				b := attrs[y] - int32(nVal)
				p := pair{a, b}
				if _, done := tried[p]; done {
					continue
				}
				tried[p] = struct{}{}
				if attrOverlapOK(g, attrs[x], attrs[y], minOverlap, minIntersection) {
					union(a, b)
				}
			}
		}
	}

	out := &AttrClustering{ClusterOf: make([]int32, nAttr)}
	compact := make(map[int32]int32)
	for i := int32(0); int(i) < nAttr; i++ {
		root := find(i)
		id, ok := compact[root]
		if !ok {
			id = int32(len(compact))
			compact[root] = id
		}
		out.ClusterOf[i] = id
	}
	out.NumClusters = len(compact)
	return out
}

// attrOverlapOK merges two sorted value-node neighbor lists and checks the
// clustering criteria.
func attrOverlapOK(g BipartiteGraph, a, b int32, minOverlap float64, minIntersection int) bool {
	na, nb := g.Neighbors(a), g.Neighbors(b)
	if len(na) == 0 || len(nb) == 0 {
		return false
	}
	inter := 0
	i, j := 0, 0
	for i < len(na) && j < len(nb) {
		switch {
		case na[i] < nb[j]:
			i++
		case na[i] > nb[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	if inter < minIntersection {
		return false
	}
	m := len(na)
	if len(nb) < m {
		m = len(nb)
	}
	return float64(inter)/float64(m) >= minOverlap
}

// MeaningCounts estimates the number of distinct meanings of every value
// node as the number of distinct attribute clusters it occurs in.
func (c *AttrClustering) MeaningCounts(g BipartiteGraph) []int {
	nVal := g.NumValues()
	out := make([]int, nVal)
	seen := make(map[int32]struct{})
	for u := 0; u < nVal; u++ {
		for k := range seen {
			delete(seen, k)
		}
		for _, a := range g.Neighbors(int32(u)) {
			seen[c.ClusterOf[a-int32(nVal)]] = struct{}{}
		}
		out[u] = len(seen)
	}
	return out
}
