package community

import (
	"testing"

	"domainnet/internal/bipartite"
	"domainnet/internal/datagen"
	"domainnet/internal/lake"
)

// multiColumnTypes builds two semantic types with low pairwise overlap —
// the regime where label propagation keeps columns separate but attribute
// clustering must still group them.
func multiColumnTypes() *bipartite.Graph {
	attrs := []lake.Attribute{
		{ID: "c1", Values: []string{"A1", "A2", "A3", "A4", "A5", "A6", "JAGUAR"}},
		{ID: "c2", Values: []string{"A4", "A5", "A6", "A7", "A8", "A9"}},
		{ID: "c3", Values: []string{"B1", "B2", "B3", "B4", "B5", "B6", "JAGUAR"}},
		{ID: "c4", Values: []string{"B4", "B5", "B6", "B7", "B8", "B9"}},
	}
	return bipartite.FromAttributes(attrs, bipartite.Options{KeepSingletons: true})
}

func TestClusterAttributesGroupsTypes(t *testing.T) {
	g := multiColumnTypes()
	c := ClusterAttributes(g, 0.3, 2)
	if c.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", c.NumClusters)
	}
	if c.ClusterOf[0] != c.ClusterOf[1] {
		t.Error("c1 and c2 (3 shared values) should cluster together")
	}
	if c.ClusterOf[2] != c.ClusterOf[3] {
		t.Error("c3 and c4 should cluster together")
	}
	if c.ClusterOf[0] == c.ClusterOf[2] {
		t.Error("the single shared homograph must not merge the two types")
	}
}

func TestClusterMeaningCounts(t *testing.T) {
	g := multiColumnTypes()
	c := ClusterAttributes(g, 0.3, 2)
	meanings := c.MeaningCounts(g)
	jaguar, _ := g.ValueNode("JAGUAR")
	if meanings[jaguar] != 2 {
		t.Errorf("JAGUAR meanings = %d, want 2", meanings[jaguar])
	}
	a4, _ := g.ValueNode("A4") // two columns, one type
	if meanings[a4] != 1 {
		t.Errorf("A4 meanings = %d, want 1", meanings[a4])
	}
}

func TestClusterAttributesDefaults(t *testing.T) {
	g := multiColumnTypes()
	c := ClusterAttributes(g, 0, 0) // defaults 0.15 / 2
	if c.NumClusters != 2 {
		t.Errorf("clusters with defaults = %d, want 2", c.NumClusters)
	}
}

func TestClusterAttributesSBRecoversTwoMeanings(t *testing.T) {
	// On the synthetic benchmark the planted non-abbreviation homographs
	// bridge exactly two semantic types; attribute clustering should report
	// exactly 2 meanings for nearly all of them.
	sb := datagen.NewSB(1)
	g := bipartite.FromLake(sb.Lake, bipartite.Options{})
	c := ClusterAttributes(g, 0, 0)
	meanings := c.MeaningCounts(g)
	truth := sb.HomographSet()
	exact2 := 0
	for u := 0; u < g.NumValues(); u++ {
		v := g.Value(int32(u))
		if truth[v] && len(v) > 2 { // skip the code/abbreviation collapse
			if meanings[u] == 2 {
				exact2++
			}
		}
	}
	if exact2 < 30 {
		t.Errorf("only %d homographs recovered exactly 2 meanings", exact2)
	}
}

func TestClusterAttributesEmptyGraph(t *testing.T) {
	g := bipartite.FromAttributes(nil, bipartite.Options{})
	c := ClusterAttributes(g, 0, 0)
	if c.NumClusters != 0 || len(c.ClusterOf) != 0 {
		t.Errorf("empty graph clustering = %+v", c)
	}
}
