// Package community implements parameter-free community detection on the
// DomainNet graph via label propagation, and uses it to estimate how many
// distinct meanings a homograph has — the extension the paper sketches in
// §6 ("we are investigating the role of community detection algorithms on
// discovery of meanings of values in data lake tables"; a community
// represents one meaning, e.g. animal vs. car model).
//
// Label propagation needs no prior knowledge of the number of communities,
// which §3.3 identifies as the blocking requirement for classic community
// detection in lakes. On the bipartite graph, attribute nodes of one
// semantic type share many values and converge to one label; a homograph's
// attributes keep the labels of their own types, so the number of distinct
// labels among a value's attribute neighbors estimates its meaning count.
package community

import (
	"math/rand"
	"sort"
)

// Graph is the adjacency view label propagation needs (satisfied by
// bipartite.Graph and cooccur.Graph).
type Graph interface {
	NumNodes() int
	Neighbors(u int32) []int32
}

// Options configure label propagation.
type Options struct {
	// Seed drives the node-visit shuffling; fixed seeds give deterministic
	// communities.
	Seed int64
	// MaxIterations bounds the sweeps over all nodes. Zero means 100;
	// propagation almost always converges much earlier.
	MaxIterations int
}

// Result holds a community assignment.
type Result struct {
	// Labels maps each node to its community id; ids are compacted to
	// 0..NumCommunities-1.
	Labels []int32
	// NumCommunities is the number of distinct labels.
	NumCommunities int
	// Iterations is how many sweeps ran before convergence.
	Iterations int
}

// Of returns the community of node u.
func (r *Result) Of(u int32) int32 { return r.Labels[u] }

// Sizes returns the node count per community id.
func (r *Result) Sizes() []int {
	sizes := make([]int, r.NumCommunities)
	for _, l := range r.Labels {
		sizes[l]++
	}
	return sizes
}

// LabelPropagation runs synchronous-free (asynchronous) label propagation:
// every node starts in its own community and repeatedly adopts the most
// frequent label among its neighbors, breaking ties toward the smallest
// label for determinism, until a full sweep changes nothing.
func LabelPropagation(g Graph, opts Options) *Result {
	n := g.NumNodes()
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	order := rng.Perm(n)

	counts := make(map[int32]int)
	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		for _, oi := range order {
			u := int32(oi)
			nb := g.Neighbors(u)
			if len(nb) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			for _, v := range nb {
				counts[labels[v]]++
			}
			best := labels[u]
			bestCount := counts[best] // 0 when no neighbor shares u's label
			for l, c := range counts {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			if best != labels[u] {
				labels[u] = best
				changed = true
			}
		}
		if !changed {
			iters++
			break
		}
	}

	// Compact label ids.
	compact := make(map[int32]int32)
	for i, l := range labels {
		id, ok := compact[l]
		if !ok {
			id = int32(len(compact))
			compact[l] = id
		}
		labels[i] = id
	}
	return &Result{Labels: labels, NumCommunities: len(compact), Iterations: iters}
}

// BipartiteGraph is the subset of bipartite.Graph the meaning estimator
// needs.
type BipartiteGraph interface {
	Graph
	NumValues() int
}

// MeaningCounts estimates the number of distinct meanings of every value
// node as the number of distinct communities among its attribute neighbors.
// Values with one meaning yield 1; homographs bridging k semantic types
// yield k (paper §6: a community represents a meaning for a value).
func MeaningCounts(g BipartiteGraph, r *Result) []int {
	nVal := g.NumValues()
	out := make([]int, nVal)
	seen := make(map[int32]struct{})
	for u := 0; u < nVal; u++ {
		for k := range seen {
			delete(seen, k)
		}
		for _, a := range g.Neighbors(int32(u)) {
			seen[r.Labels[a]] = struct{}{}
		}
		out[u] = len(seen)
	}
	return out
}

// Modularity computes the (unipartite-form) Newman modularity of a
// community assignment — a sanity metric for tests and ablations. Values
// near 0 mean no community structure; well-clustered lakes score higher.
func Modularity(g Graph, r *Result) float64 {
	n := g.NumNodes()
	var m2 float64 // 2m = sum of degrees
	deg := make([]float64, n)
	for u := 0; u < n; u++ {
		deg[u] = float64(len(g.Neighbors(int32(u))))
		m2 += deg[u]
	}
	if m2 == 0 {
		return 0
	}
	// Q = (1/2m) Σ_uv [A_uv - d_u d_v / 2m] δ(c_u, c_v)
	// Split into the edge term and the degree term aggregated per community.
	var edgeTerm float64
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if r.Labels[u] == r.Labels[v] {
				edgeTerm++
			}
		}
	}
	degPerCom := make([]float64, r.NumCommunities)
	for u := 0; u < n; u++ {
		degPerCom[r.Labels[u]] += deg[u]
	}
	var degTerm float64
	for _, d := range degPerCom {
		degTerm += d * d
	}
	return edgeTerm/m2 - degTerm/(m2*m2)
}

// CommunityValues returns, per community, the sorted value-node ids assigned
// to it — the "discovered domain" view of a community assignment.
func CommunityValues(g BipartiteGraph, r *Result) [][]int32 {
	out := make([][]int32, r.NumCommunities)
	for u := 0; u < g.NumValues(); u++ {
		l := r.Labels[u]
		out[l] = append(out[l], int32(u))
	}
	for i := range out {
		sort.Slice(out[i], func(a, b int) bool { return out[i][a] < out[i][b] })
	}
	return out
}
