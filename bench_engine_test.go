package bench

// Engine-focused benchmarks: worker-count sweeps proving that exact Brandes
// betweenness and bipartite graph construction scale with parallelism while
// holding scratch allocation at O(workers), independent of the source count.
// Run with -benchmem; the allocs/op column is the O(workers) claim.

import (
	"fmt"
	"runtime"
	"testing"

	"domainnet/internal/bipartite"
	"domainnet/internal/centrality"
	"domainnet/internal/datagen"
	"domainnet/internal/engine"
)

// workerSweep returns deduplicated worker counts up to GOMAXPROCS.
func workerSweep() []int {
	max := runtime.GOMAXPROCS(0)
	var out []int
	for _, w := range []int{1, 2, 4, 8, max} {
		if w > max {
			break
		}
		if len(out) == 0 || out[len(out)-1] != w {
			out = append(out, w)
		}
	}
	return out
}

// BenchmarkEngineBrandesWorkers sweeps exact Brandes BC over the SB graph by
// worker count. Scratch is one pooled arena per worker; allocs/op stays flat
// as sources (= nodes) grow.
func BenchmarkEngineBrandesWorkers(b *testing.B) {
	sb := datagen.NewSB(1)
	g := bipartite.FromLake(sb.Lake, bipartite.Options{})
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				centrality.Betweenness(g, engine.Opts{Normalized: true, Workers: w})
			}
		})
	}
}

// BenchmarkEngineGraphBuildWorkers sweeps parallel bipartite construction on
// the NYC-scale generator by worker count.
func BenchmarkEngineGraphBuildWorkers(b *testing.B) {
	attrs := datagen.NYC(datagen.NYCConfig{Scale: 0.05, Seed: 1})
	for _, w := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := bipartite.FromAttributes(attrs, bipartite.Options{Workers: w})
				if g.NumEdges() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkEngineHarmonicSB times the (now parallel) exact harmonic pass.
func BenchmarkEngineHarmonicSB(b *testing.B) {
	sb := datagen.NewSB(1)
	g := bipartite.FromLake(sb.Lake, bipartite.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.Harmonic(g, engine.Opts{})
	}
}

// BenchmarkEngineValueNeighbors times the bitset-based co-occurrence
// neighborhood, the N(u) primitive behind Table 1 cardinalities.
func BenchmarkEngineValueNeighbors(b *testing.B) {
	sb := datagen.NewSB(1)
	g := bipartite.FromLake(sb.Lake, bipartite.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := int32(i % g.NumValues())
		if got := g.ValueNeighbors(u); len(got) > g.NumValues() {
			b.Fatal("impossible neighborhood")
		}
	}
}
