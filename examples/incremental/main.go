// Incremental example: data lakes are dynamic (paper Definition 1) — table
// additions and removals flip values between homograph and unambiguous. This
// walkthrough drives the Figure 1 lake through such updates with
// Detector.Update, which rebuilds the graph incrementally from the previous
// snapshot instead of re-processing the whole lake, and shows the ranking
// tracking every lake version.
//
// Run with: go run ./examples/incremental
package main

import (
	"fmt"

	"domainnet/internal/datagen"
	"domainnet/internal/domainnet"
	"domainnet/internal/table"
)

func main() {
	l := datagen.Figure1Lake()
	cfg := domainnet.Config{Measure: domainnet.BetweennessExact, KeepSingletons: true}

	det := domainnet.New(l, cfg)
	show("initial lake (Jaguar = animal, car make, company)", det)

	// Remove the car table T3 and the company table T4: Jaguar and Puma
	// lose their second meanings. Update reuses the untouched tables'
	// interned values and adjacency spans.
	l.RemoveTable("T3")
	l.RemoveTable("T4")
	det = det.Update(l)
	show("after removing T3 and T4 (only the animal meaning remains)", det)

	// A new car-dealer table re-creates the homograph.
	l.MustAdd(table.New("T5").
		AddColumn("Make", "Jaguar", "Fiat", "Toyota").
		AddColumn("Sold", "12", "30", "25"))
	det = det.Update(l)
	show("after adding dealer table T5 (Jaguar is a homograph again)", det)
}

func show(what string, det *domainnet.Detector) {
	fmt.Printf("%s — lake version %d\n", what, det.Version())
	for i, s := range det.TopK(3) {
		fmt.Printf("  %d. %-8s %.4f\n", i+1, s.Value, s.Score)
	}
	fmt.Println()
}
