// Replication example: one leader, one follower, zero dependencies. The
// leader serves the Figure 1 lake with a write-ahead log; every mutation
// burst is fsynced to the log before it is acknowledged, and the same log
// doubles as the follower's change feed. The follower bootstraps from the
// leader's snapshot stream, tails the feed, and serves the same rankings at
// the same versions — then a table upload on the leader propagates and both
// sides are compared byte for byte.
//
// Run with: go run ./examples/replication
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"

	"domainnet/internal/datagen"
	"domainnet/internal/domainnet"
	"domainnet/internal/repl"
	"domainnet/internal/serve"
	"domainnet/internal/table"
	"domainnet/internal/wal"
)

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(b)
}

func main() {
	walDir, err := os.MkdirTemp("", "domainnet-replication")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)
	cfg := domainnet.Config{Measure: domainnet.BetweennessExact, KeepSingletons: true}

	// The leader: WAL first, then the serving layer with the write-ahead
	// hook, then the replication endpoints.
	wlog, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if cerr := wlog.Close(); cerr != nil {
			log.Printf("replication: closing wal: %v", cerr)
		}
	}()
	ld := repl.NewLeader(wlog)
	leader := serve.NewWithOptions(datagen.Figure1Lake(), cfg,
		serve.Options{OnCommit: ld.OnCommit})
	ld.Attach(leader)
	lts := httptest.NewServer(leader)
	defer lts.Close()
	fmt.Printf("leader serving at version %d, wal in %s\n", leader.Version(), walDir)

	// The follower: bootstrap from the leader's snapshot stream.
	ctx := context.Background()
	f := &repl.Follower{Leader: lts.URL, Config: cfg, Logf: log.Printf}
	if err := f.Bootstrap(ctx); err != nil {
		log.Fatal(err)
	}
	fts := httptest.NewServer(f)
	defer fts.Close()
	fmt.Printf("follower bootstrapped at version %d\n", f.Version())

	// A write lands on the leader — fsynced to the WAL before the 201 — and
	// the follower picks it up from the change feed.
	if _, err := leader.Apply([]*table.Table{
		table.New("movies").AddColumn("title", "Jaguar", "Casablanca"),
	}, nil); err != nil {
		log.Fatal(err)
	}
	if _, err := f.Poll(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after upload: leader at version %d, follower at version %d\n",
		leader.Version(), f.Version())

	// Same version, byte-identical rankings.
	lTop, fTop := get(lts.URL+"/topk?k=5"), get(fts.URL+"/topk?k=5")
	fmt.Printf("top-5 identical across leader and follower: %v\n", lTop == fTop)
	fmt.Print(fTop)

	// Followers are read-only; mutations belong on the leader.
	resp, err := http.Post(fts.URL+"/tables/nope", "text/csv", nil)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("write against the follower: HTTP %d\n", resp.StatusCode)
}
