// Meanings example: the paper's §6 extension — once homographs are found,
// how many meanings does each have, and which candidates look like data
// errors rather than genuine homographs?
//
// DomainNet detects homographs with centrality; community structure over
// the same graph then separates the meanings: each attribute-type cluster a
// value occurs in is one meaning (Jaguar: animals + car makers = 2).
// Candidates whose minority meanings rest on a single stray column are
// flagged as likely misplaced values (the paper's "Manitoba Hydro in the
// Street Name column").
//
// Run with: go run ./examples/meanings
package main

import (
	"fmt"

	"domainnet/internal/datagen"
	"domainnet/internal/domainnet"
)

func main() {
	sb := datagen.NewSB(1)
	truth := sb.GT.MeaningCounts()

	det := domainnet.New(sb.Lake, domainnet.Config{Measure: domainnet.BetweennessExact})
	analysis := det.Analyze(1)
	fmt.Printf("lake decomposed into %d graph communities\n\n", analysis.NumCommunities())

	fmt.Println("top homograph candidates with estimated meanings:")
	fmt.Println("rank  value        bc       meanings(est)  meanings(truth)  dominant-share")
	for i, p := range analysis.TopProfiles(12) {
		fmt.Printf("%4d  %-12s %.5f  %13d  %15d  %14.2f\n",
			i+1, p.Value, p.Score, p.Meanings, truth[p.Value], p.DominantShare)
	}

	// Accuracy of the meaning estimate over all 55 planted homographs
	// (ground truth: every SB homograph has exactly 2 meanings).
	meanings := analysis.MeaningCounts()
	g := det.Graph()
	exact := 0
	for u := 0; u < g.NumValues(); u++ {
		v := g.Value(int32(u))
		if truth[v] >= 2 && meanings[u] == truth[v] {
			exact++
		}
	}
	fmt.Printf("\nmeaning estimate exactly right for %d/55 planted homographs\n", exact)

	// The error heuristic flags candidates whose minority meaning rests on
	// a single column. On SB those are genuine homographs whose second
	// type happens to be a one-column type (movies, groceries) — on a real
	// lake the same pattern catches misplaced values; a human reviews the
	// shortlist either way.
	if errs := analysis.ErrorCandidates(55); len(errs) > 0 {
		fmt.Println("\ncandidates matching the misplaced-value pattern (minority meaning in one column):")
		for _, p := range errs {
			fmt.Printf("  %-14s support=%v\n", p.Value, p.Support)
		}
	}
}
