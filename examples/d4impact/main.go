// D4-impact example: §5.5 in miniature. Homographs are not only a retrieval
// nuisance — they degrade downstream semantic-integration tasks. This
// example runs the D4 domain-discovery baseline over a clean lake and over
// variants with increasing numbers of injected homographs, showing the
// discovered-domain count drift upward (the paper's Figure 10).
//
// Run with: go run ./examples/d4impact
package main

import (
	"fmt"
	"log"

	"domainnet/internal/d4"
	"domainnet/internal/datagen"
	"domainnet/internal/union"
)

func main() {
	cfg := datagen.SmallTUS()
	cfg.Homographs = 0
	base := datagen.TUS(cfg).RemoveHomographs()

	baseline := d4.Run(base.Attrs, d4.Config{})
	fmt.Printf("clean lake: D4 finds %d domains (%d union classes in ground truth)\n",
		baseline.NumDomains(), base.NumClasses())
	fmt.Printf("covered columns: %d/%d, max domains per column: %d\n\n",
		baseline.CoveredColumns, baseline.TotalColumns, baseline.MaxDomainsPerColumn)

	fmt.Println("meanings  injected  domains  max/col  avg/col")
	for _, meanings := range []int{2, 4, 6} {
		for _, count := range []int{10, 20, 30, 40} {
			inj, err := base.Inject(union.InjectOptions{
				Count:    count,
				Meanings: meanings,
				Seed:     int64(100*meanings + count),
			})
			if err != nil {
				log.Fatal(err)
			}
			res := d4.Run(inj.GT.Attrs, d4.Config{})
			fmt.Printf("%8d  %8d  %7d  %7d  %7.3f\n",
				meanings, count, res.NumDomains(), res.MaxDomainsPerColumn, res.AvgDomainsPerColumn)
		}
	}
	fmt.Println("\nDomain counts grow with injected homographs: cleaning homographs first")
	fmt.Println("(e.g. with DomainNet) protects domain discovery, as §5.5 argues.")
}
