// Datalake example: the full CSV-directory workflow on the synthetic
// benchmark (SB). The example materializes SB as a directory of CSV files —
// the shape a real data lake has on disk — loads it back, runs homograph
// detection with both measures, and evaluates against ground truth.
//
// Run with: go run ./examples/datalake
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"domainnet/internal/datagen"
	"domainnet/internal/domainnet"
	"domainnet/internal/eval"
	"domainnet/internal/lake"
)

func main() {
	// Generate SB and write it out as 13 CSV files.
	sb := datagen.NewSB(1)
	dir := filepath.Join(os.TempDir(), "domainnet-sb-example")
	if err := sb.Lake.SaveDir(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d tables to %s\n", sb.Lake.NumTables(), dir)

	// Load it back the way a user would load their own lake.
	loaded, err := lake.LoadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded lake: %s\n\n", loaded.Stats())

	truth := sb.HomographSet()
	k := len(sb.Homographs)

	// Betweenness centrality: the recommended measure. Workers: 0 (the
	// default) parallelizes graph build and scoring over all CPUs.
	bc := domainnet.New(loaded, domainnet.Config{Measure: domainnet.BetweennessExact, Workers: 0})
	bcMetrics := eval.AtK(bc.Ranking(), truth, k)
	fmt.Printf("betweenness:  P@%d = %.3f\n", k, bcMetrics.Precision)

	fmt.Println("\ntop-15 homograph candidates (betweenness):")
	for i, s := range bc.TopK(15) {
		label := ""
		if truth[s.Value] {
			label = "  (true homograph)"
		}
		fmt.Printf("%4d  %-14s %.5f%s\n", i+1, s.Value, s.Score, label)
	}

	// The cheap local measure for comparison; the paper's Figure 5 shows it
	// separates poorly.
	lcc := domainnet.New(loaded, domainnet.Config{Measure: domainnet.LCC})
	lccMetrics := eval.AtK(lcc.Ranking(), truth, k)
	fmt.Printf("\nlcc (ascending): P@%d = %.3f — weaker, as in Figure 5\n", k, lccMetrics.Precision)

	_ = os.RemoveAll(dir)
}
