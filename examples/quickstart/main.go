// Quickstart: build a DomainNet detector over the paper's running example
// (Figure 1) and print the homograph ranking.
//
// The lake contains four tables about sponsorships, zoos, cars and company
// financials. "Jaguar" and "Puma" each mean two different things; DomainNet
// ranks them first by betweenness centrality without any supervision.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"domainnet/internal/datagen"
	"domainnet/internal/domainnet"
)

func main() {
	lake := datagen.Figure1Lake()
	fmt.Printf("data lake %q: %s\n", lake.Name, lake.Stats())

	// Every measure is a Scorer in the engine registry; the Measure constants
	// below are names into it.
	fmt.Printf("registered scorers: %v\n\n", domainnet.Scorers())

	// Step 1+2: build the bipartite value/attribute graph and score every
	// value node with exact betweenness centrality (the lake is tiny).
	det := domainnet.New(lake, domainnet.Config{
		Measure:        domainnet.BetweennessExact,
		KeepSingletons: true, // keep one-off values: the example is about the graph shape
	})
	g := det.Graph()
	fmt.Printf("DomainNet graph: %d value nodes, %d attribute nodes, %d edges\n\n",
		g.NumValues(), g.NumAttrs(), g.NumEdges())

	// Step 3: rank. Homographs surface at the top.
	fmt.Println("rank  value        betweenness")
	for i, s := range det.TopK(8) {
		marker := ""
		if s.Value == "JAGUAR" || s.Value == "PUMA" {
			marker = "  <- homograph"
		}
		fmt.Printf("%4d  %-12s %.4f%s\n", i+1, s.Value, s.Score, marker)
	}

	// The LCC alternative ranks ascending; compare the two measures on the
	// values the paper discusses in Example 3.6.
	lcc := domainnet.New(lake, domainnet.Config{
		Measure:        domainnet.LCC,
		KeepSingletons: true,
	})
	fmt.Println("\nExample 3.6 scores (BC descending, LCC ascending):")
	for _, v := range []string{"JAGUAR", "PUMA", "TOYOTA", "PANDA"} {
		bc, _ := det.Score(v)
		l, _ := lcc.Score(v)
		fmt.Printf("  %-8s BC=%.4f  LCC=%.3f\n", v, bc, l)
	}
}
