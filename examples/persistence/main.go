// Persistence example: a restart should not cost a full graph build. This
// walkthrough saves the Figure 1 lake together with its built graph to a
// durable snapshot (internal/persist), "restarts" by loading it back, and
// shows that the warm-started detector ranks identically — without invoking
// the full construction — and that the first update after the restart is
// still priced by its delta, because the loaded graph supports incremental
// rebuilds exactly like the one that was saved.
//
// Run with: go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"domainnet/internal/bipartite"
	"domainnet/internal/datagen"
	"domainnet/internal/domainnet"
	"domainnet/internal/persist"
	"domainnet/internal/table"
)

func main() {
	dir, err := os.MkdirTemp("", "domainnet-persistence")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "lake.snapshot")

	cfg := domainnet.Config{Measure: domainnet.BetweennessExact, KeepSingletons: true}

	// "First process": build once, serve, checkpoint to disk.
	l := datagen.Figure1Lake()
	det := domainnet.New(l, cfg)
	show("cold build", det)
	if err := persist.Save(path, l, det.Graph()); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("checkpointed lake+graph to %s (%d bytes)\n\n", filepath.Base(path), fi.Size())

	// "Second process": warm-start from the snapshot. The graph comes off
	// disk — values, adjacency and occurrence counts included — so no full
	// build runs.
	before := bipartite.FullBuilds()
	sn, err := persist.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	warm := domainnet.FromGraph(sn.Graph, cfg)
	show("warm start (graph loaded, not rebuilt)", warm)
	fmt.Printf("full graph builds during warm start: %d\n\n", bipartite.FullBuilds()-before)

	// The restart is invisible to the update path: adding a table to the
	// rehydrated lake rebuilds incrementally from the loaded graph.
	sn.Lake.MustAdd(table.New("T5").
		AddColumn("Make", "Jaguar", "Fiat", "Toyota").
		AddColumn("Sold", "12", "30", "25"))
	attrs := sn.Lake.Attributes()
	changed := bipartite.Changed(sn.Graph, attrs)
	fmt.Printf("after adding T5: %d of %d attributes changed — delta-priced rebuild\n",
		len(changed), len(attrs))
	g := bipartite.Rebuild(sn.Graph, attrs, changed, bipartite.Options{KeepSingletons: true})
	show("after post-restart update", domainnet.FromGraph(g, cfg))
}

func show(what string, det *domainnet.Detector) {
	fmt.Printf("%s:\n", what)
	for i, s := range det.TopK(3) {
		fmt.Printf("  %d. %-8s %.4f\n", i+1, s.Value, s.Score)
	}
	fmt.Println()
}
