// Injection example: the TUS-I protocol of §4.3 in miniature. Starting from
// a homograph-free lake, inject synthetic homographs with controlled
// cardinality and number of meanings, then measure how reliably betweenness
// centrality surfaces them (the paper's Tables 2 and 3).
//
// Run with: go run ./examples/injection
package main

import (
	"fmt"
	"log"

	"domainnet/internal/bipartite"
	"domainnet/internal/datagen"
	"domainnet/internal/domainnet"
	"domainnet/internal/eval"
	"domainnet/internal/union"
)

func main() {
	// A clean base lake: generate a TUS-style lake with no planted
	// homographs and strip the residual numeric ones (§4.3 step 1).
	cfg := datagen.SmallTUS()
	cfg.Homographs = 0
	base := datagen.TUS(cfg).RemoveHomographs()
	fmt.Printf("clean base: %d attributes, %d union classes, %d homographs\n",
		len(base.Attrs), base.NumClasses(), len(base.Homographs()))

	// Inject 20 homographs, each replacing values in two non-unionable
	// columns (§4.3 step 2).
	inj, err := base.Inject(union.InjectOptions{Count: 20, Meanings: 2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %d homographs, e.g. %s replaced %v\n\n",
		len(inj.Injected), inj.Injected[0], inj.Replaced[inj.Injected[0]])

	// Detect with sampled betweenness centrality.
	g := bipartite.FromAttributes(inj.GT.Attrs, bipartite.Options{})
	det := domainnet.FromGraph(g, domainnet.Config{Samples: 400, Seed: 7})
	hits := eval.HitsAtK(det.Ranking(), inj.InjectedSet(), 20)
	fmt.Printf("%d/20 injected homographs rank in the top-20 by BC\n\n", hits)

	// The meanings effect of Table 3: more meanings -> easier to find.
	fmt.Println("meanings  % injected in top-20")
	for _, m := range []int{2, 4, 6, 8} {
		inj, err := base.Inject(union.InjectOptions{Count: 20, Meanings: m, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		g := bipartite.FromAttributes(inj.GT.Attrs, bipartite.Options{})
		det := domainnet.FromGraph(g, domainnet.Config{Samples: 400, Seed: 7})
		hits := eval.HitsAtK(det.Ranking(), inj.InjectedSet(), 20)
		fmt.Printf("%8d  %3.0f%%\n", m, 100*float64(hits)/20)
	}
}
