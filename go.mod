module domainnet

go 1.24
