// Command experiments regenerates the paper's tables and figures as text
// output. By default it runs every experiment at medium scale; flags select
// individual experiments and scales.
//
// Usage:
//
//	experiments [-scale small|medium|full] [-only table1,fig5,fig6,sb,table2,table3,fig7,fig8,fig9,fig10,ablation,meanings,times]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"domainnet/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "medium", "dataset scale: small, medium or full")
	onlyFlag := flag.String("only", "", "comma-separated experiment list (default: all)")
	seedFlag := flag.Int64("seed", 1, "base random seed")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "small":
		scale = experiments.ScaleSmall
	case "medium":
		scale = experiments.ScaleMedium
	case "full":
		scale = experiments.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, name := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }
	seed := *seedFlag

	if run("table1") {
		section("Table 1")
		fmt.Print(experiments.RenderTable1(experiments.Table1(scale)))
	}
	if run("fig5") || run("fig6") {
		section("Figures 5 and 6 (SB rankings)")
		fmt.Print(experiments.Figures56(seed).Render())
	}
	if run("sb") {
		section("§5.1 SB comparison vs D4")
		fmt.Print(experiments.SBComparison(seed).Render())
	}
	if run("table2") {
		section("Table 2")
		res, err := experiments.Table2(experiments.DefaultInjection(scale), nil)
		exitOn(err)
		fmt.Print(res.Render())
	}
	if run("table3") {
		section("Table 3")
		cfg := experiments.DefaultInjection(scale)
		res, err := experiments.Table3(cfg, nil, -1)
		exitOn(err)
		fmt.Print(res.Render())
	}
	if run("fig7") {
		section("Figure 7 and §5.3 top-10 (TUS)")
		fmt.Print(experiments.Figure7(experiments.TUSConfigFor(scale), samplesFor(scale), seed).Render())
	}
	if run("fig8") {
		section("Figure 8 (approximation quality vs samples)")
		sizes := []int{125, 250, 500, 1000, 2000}
		if scale == experiments.ScaleSmall {
			sizes = []int{50, 100, 200, 400}
		}
		fmt.Print(experiments.Figure8(experiments.TUSConfigFor(scale), sizes, scale != experiments.ScaleFull, seed).Render())
	}
	if run("fig9") {
		section("Figure 9 (scalability on NYC-scale subgraphs)")
		nycScale := map[experiments.Scale]float64{
			experiments.ScaleSmall:  0.01,
			experiments.ScaleMedium: 0.05,
			experiments.ScaleFull:   1.0,
		}[scale]
		res := experiments.Figure9(nycScale, nil, 0.01, seed)
		fmt.Print(res.Render())
		fmt.Printf("linear fit R^2 = %.3f (paper: runtime linear in edges)\n", res.LinearFitR2())
	}
	if run("fig10") {
		section("Figure 10 (impact of homographs on D4)")
		counts := []int{50, 100, 150, 200}
		if scale == experiments.ScaleSmall {
			counts = []int{4, 8, 12}
		} else if scale == experiments.ScaleMedium {
			counts = []int{25, 50, 75, 100}
		}
		res, err := experiments.Figure10(experiments.TUSConfigFor(scale), counts, nil, seed)
		exitOn(err)
		fmt.Print(res.Render())
	}
	if run("ablation") {
		section("Measure ablation (extensions)")
		fmt.Print(experiments.RenderMeasureAblation(experiments.MeasureAblation(seed)))
	}
	if run("meanings") {
		section("Meaning discovery (§6 extension)")
		fmt.Print(experiments.MeaningDiscovery(seed).Render())
	}
	if run("times") {
		section("Construction and LCC timings (§5.4)")
		fmt.Print(experiments.RenderConstruction(experiments.ConstructionTimes(scale)))
	}
}

// samplesFor picks the approximate-BC sample count per scale (§5.4: ~1% of
// nodes approximates the exact ranking well).
func samplesFor(scale experiments.Scale) int {
	switch scale {
	case experiments.ScaleSmall:
		return 400
	case experiments.ScaleFull:
		return 5000
	default:
		return 1000
	}
}

func section(title string) {
	fmt.Printf("\n==== %s ====\n", title)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
