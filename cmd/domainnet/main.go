// Command domainnet runs homograph detection over a directory of CSV files,
// printing the top-k homograph candidates (paper §3.4: construct graph →
// compute measure → rank).
//
// Usage:
//
//	domainnet -dir path/to/lake [-k 50] [-workers 0]
//	          [-measure bc|bc-exact|bc-eps|lcc|lcc-attr|degree|harmonic]
//	          [-samples 0] [-seed 1] [-keep-singletons] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"domainnet/internal/domainnet"
	"domainnet/internal/lake"
)

func main() {
	dir := flag.String("dir", "", "directory of CSV tables (required)")
	k := flag.Int("k", 50, "number of homograph candidates to print")
	measure := flag.String("measure", "bc", "scoring measure: bc, bc-exact, bc-eps, lcc, lcc-attr, degree or harmonic")
	samples := flag.Int("samples", 0, "approximate-BC sample count (0 = 1% of nodes)")
	seed := flag.Int64("seed", 1, "random seed for sampling")
	workers := flag.Int("workers", 0, "parallelism for graph build and scoring (0 = all CPUs)")
	keep := flag.Bool("keep-singletons", false, "keep values occurring only once")
	stats := flag.Bool("stats", false, "print lake and graph statistics")
	flag.Parse()

	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	m, ok := domainnet.ParseMeasure(*measure)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown measure %q (valid: %s; scorer registry: %s)\n",
			*measure, strings.Join(domainnet.MeasureNames(), ", "), strings.Join(domainnet.Scorers(), ", "))
		os.Exit(2)
	}

	l, err := lake.LoadDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	det := domainnet.New(l, domainnet.Config{
		Measure:        m,
		Samples:        *samples,
		Seed:           *seed,
		Workers:        *workers,
		KeepSingletons: *keep,
	})

	if *stats {
		g := det.Graph()
		fmt.Printf("lake: %s\n", l.Stats())
		fmt.Printf("graph: %d value nodes, %d attribute nodes, %d edges\n\n",
			g.NumValues(), g.NumAttrs(), g.NumEdges())
	}

	fmt.Printf("top-%d homograph candidates by %s:\n", *k, m)
	for i, s := range det.TopK(*k) {
		fmt.Printf("%5d  %-40q %.6g\n", i+1, s.Value, s.Score)
	}
}
