// Command domainnet runs homograph detection over a directory of CSV files,
// printing the top-k homograph candidates (paper §3.4: construct graph →
// compute measure → rank).
//
// Usage:
//
//	domainnet -dir path/to/lake [-k 50] [-workers 0]
//	          [-measure bc|bc-exact|bc-eps|lcc|lcc-attr|degree|harmonic]
//	          [-samples 0] [-seed 1] [-keep-singletons] [-stats]
//
// Snapshot subcommands build, inspect and rank from durable snapshots (the
// same format domainnetd warm-starts from):
//
//	domainnet snapshot save -dir path/to/lake -out lake.snapshot [-keep-singletons] [-workers 0]
//	domainnet snapshot info -in lake.snapshot
//	domainnet snapshot load -in lake.snapshot [-k 50] [-measure bc] [...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"domainnet/internal/bipartite"
	"domainnet/internal/domainnet"
	"domainnet/internal/lake"
	"domainnet/internal/persist"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "snapshot" {
		snapshotCmd(os.Args[2:])
		return
	}
	dir := flag.String("dir", "", "directory of CSV tables (required)")
	k := flag.Int("k", 50, "number of homograph candidates to print")
	measure := flag.String("measure", "bc", "scoring measure: bc, bc-exact, bc-eps, lcc, lcc-attr, degree or harmonic")
	samples := flag.Int("samples", 0, "approximate-BC sample count (0 = 1% of nodes)")
	seed := flag.Int64("seed", 1, "random seed for sampling")
	workers := flag.Int("workers", 0, "parallelism for graph build and scoring (0 = all CPUs)")
	keep := flag.Bool("keep-singletons", false, "keep values occurring only once")
	stats := flag.Bool("stats", false, "print lake and graph statistics")
	flag.Parse()

	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	m, ok := domainnet.ParseMeasure(*measure)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown measure %q (valid: %s; scorer registry: %s)\n",
			*measure, strings.Join(domainnet.MeasureNames(), ", "), strings.Join(domainnet.Scorers(), ", "))
		os.Exit(2)
	}

	l, err := lake.LoadDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	det := domainnet.New(l, domainnet.Config{
		Measure:        m,
		Samples:        *samples,
		Seed:           *seed,
		Workers:        *workers,
		KeepSingletons: *keep,
	})

	if *stats {
		g := det.Graph()
		fmt.Printf("lake: %s\n", l.Stats())
		fmt.Printf("graph: %d value nodes, %d attribute nodes, %d edges\n\n",
			g.NumValues(), g.NumAttrs(), g.NumEdges())
	}

	fmt.Printf("top-%d homograph candidates by %s:\n", *k, m)
	for i, s := range det.TopK(*k) {
		fmt.Printf("%5d  %-40q %.6g\n", i+1, s.Value, s.Score)
	}
}

// snapshotCmd dispatches the snapshot save/info/load subcommands.
func snapshotCmd(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: domainnet snapshot save|info|load [flags]")
		os.Exit(2)
	}
	switch args[0] {
	case "save":
		snapshotSave(args[1:])
	case "info":
		snapshotInfo(args[1:])
	case "load":
		snapshotLoad(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "unknown snapshot subcommand %q (save, info, load)\n", args[0])
		os.Exit(2)
	}
}

// snapshotSave loads a CSV lake, builds its graph once, and persists both —
// the expensive cold build paid ahead of time so every later load is warm.
func snapshotSave(args []string) {
	fs := flag.NewFlagSet("snapshot save", flag.ExitOnError)
	dir := fs.String("dir", "", "directory of CSV tables (required)")
	out := fs.String("out", "", "snapshot file to write (required)")
	workers := fs.Int("workers", 0, "graph-build parallelism (0 = all CPUs)")
	keep := fs.Bool("keep-singletons", false, "keep values occurring only once")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *dir == "" || *out == "" {
		fs.Usage()
		os.Exit(2)
	}
	l, err := lake.LoadDir(*dir)
	if err != nil {
		fatal(err)
	}
	l.Workers = *workers
	g := bipartite.FromLake(l, bipartite.Options{KeepSingletons: *keep, Workers: *workers})
	if err := persist.Save(*out, l, g); err != nil {
		fatal(err)
	}
	fmt.Printf("saved %s: lake %q (%s), graph %d value nodes / %d attribute nodes / %d edges\n",
		*out, l.Name, l.Stats(), g.NumValues(), g.NumAttrs(), g.NumEdges())
}

// snapshotInfo prints what a snapshot holds without scoring anything.
func snapshotInfo(args []string) {
	fs := flag.NewFlagSet("snapshot info", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file to read (required)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *in == "" {
		fs.Usage()
		os.Exit(2)
	}
	sn, err := persist.Load(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("lake %q, version %d: %s\n", sn.Lake.Name, sn.Lake.Version(), sn.Lake.Stats())
	if sn.Graph == nil {
		fmt.Println("graph: none (lake-only snapshot; loads cold-build)")
		return
	}
	fmt.Printf("graph: %d value nodes, %d attribute nodes, %d edges, keep-singletons=%v\n",
		sn.Graph.NumValues(), sn.Graph.NumAttrs(), sn.Graph.NumEdges(), sn.Graph.KeepsSingletons())
}

// snapshotLoad ranks straight from a snapshot: the persisted graph feeds the
// detector directly, skipping the full build.
func snapshotLoad(args []string) {
	fs := flag.NewFlagSet("snapshot load", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file to read (required)")
	k := fs.Int("k", 50, "number of homograph candidates to print")
	measure := fs.String("measure", "bc", "scoring measure: bc, bc-exact, bc-eps, lcc, lcc-attr, degree or harmonic")
	samples := fs.Int("samples", 0, "approximate-BC sample count (0 = 1% of nodes)")
	seed := fs.Int64("seed", 1, "random seed for sampling")
	workers := fs.Int("workers", 0, "scoring parallelism (0 = all CPUs)")
	keep := fs.Bool("keep-singletons", false, "keep values occurring only once (used when the snapshot has no graph)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *in == "" {
		fs.Usage()
		os.Exit(2)
	}
	m, ok := domainnet.ParseMeasure(*measure)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown measure %q (valid: %s)\n",
			*measure, strings.Join(domainnet.MeasureNames(), ", "))
		os.Exit(2)
	}
	sn, err := persist.Load(*in)
	if err != nil {
		fatal(err)
	}
	cfg := domainnet.Config{
		Measure:        m,
		Samples:        *samples,
		Seed:           *seed,
		Workers:        *workers,
		KeepSingletons: *keep,
	}
	var det *domainnet.Detector
	if sn.Graph != nil {
		cfg.KeepSingletons = sn.Graph.KeepsSingletons()
		det = domainnet.FromGraph(sn.Graph, cfg)
	} else {
		sn.Lake.Workers = *workers
		det = domainnet.New(sn.Lake, cfg)
	}
	fmt.Printf("top-%d homograph candidates by %s (lake %q, version %d):\n",
		*k, m, sn.Lake.Name, sn.Lake.Version())
	for i, s := range det.TopK(*k) {
		fmt.Printf("%5d  %-40q %.6g\n", i+1, s.Value, s.Score)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
