package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"domainnet/internal/domainnet"
	"domainnet/internal/obs"
	"domainnet/internal/router"
)

// TestMain doubles as the daemon entry point for the process-level tests:
// when DOMAINNETD_ARGS is set, the test binary re-execs into main() with
// those arguments, so the integration tests below exercise the real daemon
// — flag parsing, WAL recovery, replication, signal handling — without a
// separate build step.
func TestMain(m *testing.M) {
	if args := os.Getenv("DOMAINNETD_ARGS"); args != "" {
		os.Args = append([]string{"domainnetd"}, strings.Split(args, "\x1f")...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// --- flag validation (fail fast on contradictory flags) ---

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"defaults", nil, true},
		{"checkpoint with snapshot", []string{"-snapshot", "x.snap", "-checkpoint-every", "5"}, true},
		{"checkpoint without snapshot", []string{"-checkpoint-every", "5"}, false},
		{"negative checkpoint", []string{"-snapshot", "x.snap", "-checkpoint-every", "-1"}, false},
		{"unknown measure", []string{"-measure", "pagerank"}, false},
		{"wal standalone", []string{"-wal", "waldir"}, true},
		{"wal with snapshot and dir", []string{"-wal", "waldir", "-snapshot", "x.snap", "-dir", "csvs"}, true},
		{"wal with dir but no snapshot", []string{"-wal", "waldir", "-dir", "csvs"}, false},
		{"follow standalone", []string{"-follow", "http://leader:8080"}, true},
		{"follow with keep-singletons", []string{"-follow", "http://leader:8080", "-keep-singletons"}, false},
		{"follow with dir", []string{"-follow", "http://leader:8080", "-dir", "csvs"}, false},
		{"follow with snapshot", []string{"-follow", "http://leader:8080", "-snapshot", "x.snap"}, false},
		{"follow with wal", []string{"-follow", "http://leader:8080", "-wal", "waldir"}, false},
		{"warm measures", []string{"-warm-measures", "bc,lcc"}, true},
		{"warm measures with follow", []string{"-follow", "http://leader:8080", "-warm-measures", "bc"}, true},
		{"warm measures unknown", []string{"-warm-measures", "bc,pagerank"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args)
			if tc.ok && err != nil {
				t.Fatalf("parseFlags(%v) = %v, want success", tc.args, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("parseFlags(%v) succeeded, want an error", tc.args)
			}
		})
	}
}

func TestParseFlagsMeasuresAreRegistered(t *testing.T) {
	// parseFlags now cross-checks every measure against the scorer
	// registry: each spelling ParseMeasure accepts must resolve to a
	// registered scorer, or a documented flag value would fail at startup.
	for _, name := range domainnet.MeasureNames() {
		if _, err := parseFlags([]string{"-measure", name, "-warm-measures", name}); err != nil {
			t.Errorf("parseFlags(-measure %s -warm-measures %s) = %v, want success", name, name, err)
		}
	}
}

func TestParseWarmMeasures(t *testing.T) {
	c, err := parseFlags([]string{"-warm-measures", " bc, lcc ,bc"})
	if err != nil {
		t.Fatal(err)
	}
	// Spellings are trimmed and duplicates collapse: each measure warms once.
	want := []domainnet.Measure{domainnet.BetweennessApprox, domainnet.LCC}
	if len(c.warmMeasures) != len(want) {
		t.Fatalf("warmMeasures = %v, want %v", c.warmMeasures, want)
	}
	for i := range want {
		if c.warmMeasures[i] != want[i] {
			t.Fatalf("warmMeasures[%d] = %v, want %v", i, c.warmMeasures[i], want[i])
		}
	}
	if c, err = parseFlags(nil); err != nil || c.warmMeasures != nil {
		t.Fatalf("default warmMeasures = %v (err %v), want none", c.warmMeasures, err)
	}
}

// --- process-level integration ---

// daemon is one live domainnetd child process.
type daemon struct {
	cmd      *exec.Cmd
	url      string
	debugURL string // pprof listener, when started with -debug-addr
}

// startDaemon launches the test binary as a daemon and waits for it to log
// its bound address.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args = append([]string{"-addr", "127.0.0.1:0"}, args...)
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "DOMAINNETD_ARGS="+strings.Join(args, "\x1f"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})

	addr := make(chan string, 1)
	debugAddr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("[daemon %d] %s", cmd.Process.Pid, line)
			// The pprof listener logs first and also says "listening on";
			// match it before the main-address line can swallow it.
			if _, a, ok := strings.Cut(line, "debug (pprof) listening on "); ok {
				select {
				case debugAddr <- strings.TrimSpace(a):
				default:
				}
				continue
			}
			if _, a, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addr <- strings.TrimSpace(a):
				default:
				}
			}
		}
	}()
	select {
	case a := <-addr:
		d.url = "http://" + a
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not log its listening address")
	}
	// The debug line, when enabled, precedes the main one, so it has already
	// been scanned by now; a non-blocking read suffices.
	select {
	case a := <-debugAddr:
		d.debugURL = "http://" + a
	default:
	}
	return d
}

// kill9 crashes the daemon without any chance to checkpoint.
func (d *daemon) kill9(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
}

// shutdown stops the daemon gracefully (SIGTERM → drain → checkpoint).
func (d *daemon) shutdown(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

func (d *daemon) get(t *testing.T, path string) string {
	t.Helper()
	resp, err := http.Get(d.url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d (%s)", path, resp.StatusCode, b)
	}
	return string(b)
}

// post uploads one CSV table and fails the test unless the daemon
// acknowledged it (an acknowledged mutation is the unit of durability).
func (d *daemon) post(t *testing.T, name, csv string) {
	t.Helper()
	resp, err := http.Post(d.url+"/tables/"+name, "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /tables/%s = %d (%s)", name, resp.StatusCode, b)
	}
}

// version reads the daemon's current snapshot version from /stats.
func (d *daemon) version(t *testing.T) float64 {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(d.get(t, "/stats")), &m); err != nil {
		t.Fatal(err)
	}
	v, ok := m["version"].(float64)
	if !ok {
		t.Fatalf("stats carry no version: %v", m)
	}
	return v
}

// waitVersion polls until the daemon serves the wanted version, tolerating
// 503s while a follower bootstraps.
func (d *daemon) waitVersion(t *testing.T, want float64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url + "/stats")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				var m map[string]any
				if json.Unmarshal(b, &m) == nil {
					if v, ok := m["version"].(float64); ok && v == want {
						return
					}
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon never reached version %v within %v", want, timeout)
}

// csvTable builds a small CSV whose values overlap across tables, so the
// homograph ranking is non-trivial.
func csvTable(i int) string {
	return fmt.Sprintf("animal,city\njaguar,memphis\npuma,lima\nbeast%d,town%d\n", i, i)
}

// TestProcessCrashRecovery is the acceptance scenario: kill -9 a leader
// mid-burst-stream and restart it; the recovered lake version and served
// rankings must be bit-identical to the last acknowledged pre-crash state.
func TestProcessCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	flags := []string{
		"-wal", filepath.Join(dir, "wal"),
		"-snapshot", filepath.Join(dir, "lake.snapshot"),
		"-checkpoint-every", "3", // a checkpoint lands mid-history: recovery = snapshot + WAL tail
		"-measure", "degree",
		"-name", "crashtest",
	}
	d := startDaemon(t, flags...)
	for i := 0; i < 7; i++ {
		d.post(t, fmt.Sprintf("t%d", i), csvTable(i))
	}
	preTopk := d.get(t, "/topk?k=30&measure=degree")
	preVersion := d.version(t)
	d.kill9(t)

	// The /topk body carries the snapshot version, so one comparison pins
	// both "no acknowledged mutation lost" and "identical rankings".
	d2 := startDaemon(t, flags...)
	if got := d2.get(t, "/topk?k=30&measure=degree"); got != preTopk {
		t.Errorf("post-crash /topk differs:\npre:  %s\npost: %s", preTopk, got)
	}
	if got := d2.version(t); got != preVersion {
		t.Errorf("post-crash version = %v, want %v", got, preVersion)
	}

	// The recovered leader keeps accepting writes (the WAL chain continues
	// past the replayed history) and survives a second crash.
	d2.post(t, "t7", csvTable(7))
	preTopk = d2.get(t, "/topk?k=30&measure=degree")
	d2.kill9(t)
	d3 := startDaemon(t, flags...)
	if got := d3.get(t, "/topk?k=30&measure=degree"); got != preTopk {
		t.Errorf("second recovery /topk differs:\npre:  %s\npost: %s", preTopk, got)
	}
	d3.shutdown(t)
}

// TestProcessLeaderFollower runs a two-process replication pair: the
// follower must converge to the leader's version and serve bit-identical
// rankings, live-tail later mutations, and reject direct writes.
func TestProcessLeaderFollower(t *testing.T) {
	dir := t.TempDir()
	leader := startDaemon(t,
		"-wal", filepath.Join(dir, "wal"),
		"-measure", "degree",
		"-name", "repltest",
	)
	for i := 0; i < 4; i++ {
		leader.post(t, fmt.Sprintf("t%d", i), csvTable(i))
	}
	follower := startDaemon(t, "-follow", leader.url, "-measure", "degree")
	follower.waitVersion(t, leader.version(t), 15*time.Second)
	if l, f := leader.get(t, "/topk?k=30&measure=degree"), follower.get(t, "/topk?k=30&measure=degree"); l != f {
		t.Errorf("follower /topk diverges:\nleader:   %s\nfollower: %s", l, f)
	}

	// Live tail: a mutation after the follower attached propagates.
	leader.post(t, "late", csvTable(99))
	follower.waitVersion(t, leader.version(t), 15*time.Second)
	if l, f := leader.get(t, "/topk?k=30&measure=degree"), follower.get(t, "/topk?k=30&measure=degree"); l != f {
		t.Errorf("follower /topk diverges after live tail:\nleader:   %s\nfollower: %s", l, f)
	}

	// Followers are read-only.
	resp, err := http.Post(follower.url+"/tables/nope", "text/csv", strings.NewReader("a\nb\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("follower accepted a write: %d", resp.StatusCode)
	}

	follower.shutdown(t)
	leader.shutdown(t)
}

// TestProcessFleet runs the full serving fleet: one leader, two follower
// processes, and a read-router fronting them. The router must spread reads
// across caught-up followers, reject a follower that stops applying bursts
// (SIGSTOP freezes it mid-fleet: its version falls behind while the leader
// keeps committing), keep serving correct rankings through the outage, and
// readmit the follower once it catches back up.
func TestProcessFleet(t *testing.T) {
	dir := t.TempDir()
	leader := startDaemon(t,
		"-wal", filepath.Join(dir, "wal"),
		"-measure", "degree",
		"-name", "fleettest",
	)
	for i := 0; i < 4; i++ {
		leader.post(t, fmt.Sprintf("t%d", i), csvTable(i))
	}
	f1 := startDaemon(t, "-follow", leader.url, "-measure", "degree")
	f2 := startDaemon(t, "-follow", leader.url, "-measure", "degree")
	f1.waitVersion(t, leader.version(t), 15*time.Second)
	f2.waitVersion(t, leader.version(t), 15*time.Second)

	rt, err := router.New(router.Options{
		Leader:     leader.url,
		Replicas:   []string{f1.url, f2.url},
		MaxLag:     2,
		ReadmitLag: 1,
		Client:     &http.Client{Timeout: 500 * time.Millisecond},
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	lb := httptest.NewServer(rt)
	defer lb.Close()
	ctx := context.Background()
	rt.CheckNow(ctx)
	if st := rt.Status(); st.Admitted != 2 {
		t.Fatalf("caught-up fleet admitted %d of 2 replicas: %+v", st.Admitted, st)
	}

	// Routed reads are the leader's ranking, served by the replicas.
	getLB := func() (string, string) {
		t.Helper()
		resp, err := http.Get(lb.URL + "/topk?k=30&measure=degree")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed /topk = %d (%s)", resp.StatusCode, b)
		}
		return string(b), resp.Header.Get("X-Domainnet-Backend")
	}
	want := leader.get(t, "/topk?k=30&measure=degree")
	served := map[string]int{}
	for i := 0; i < 6; i++ {
		body, backend := getLB()
		if body != want {
			t.Fatalf("routed /topk diverges from leader:\nleader: %s\nrouted: %s", want, body)
		}
		served[backend]++
	}
	if len(served) != 2 || served[leader.url] != 0 {
		t.Errorf("reads spread over %v, want both followers and never the leader", served)
	}

	// Freeze follower 2: it stops polling, so the next three bursts put it
	// past the MaxLag=2 budget while follower 1 keeps up.
	if err := f2.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		leader.post(t, fmt.Sprintf("lagging%d", i), csvTable(10+i))
	}
	f1.waitVersion(t, leader.version(t), 15*time.Second)
	rt.CheckNow(ctx)
	if st := rt.Status(); st.Admitted != 1 {
		t.Fatalf("frozen follower not ejected: %+v", st)
	}
	want = leader.get(t, "/topk?k=30&measure=degree")
	for i := 0; i < 4; i++ {
		body, backend := getLB()
		if body != want {
			t.Fatalf("post-eject routed /topk diverges:\nleader: %s\nrouted: %s", want, body)
		}
		if backend != f1.url {
			t.Errorf("post-eject read served by %q, want the healthy follower %q", backend, f1.url)
		}
	}

	// Thaw it. Until it has caught back up to ReadmitLag it stays out of the
	// rotation; once its version reaches the leader's again, the next probe
	// rounds readmit it and it takes traffic.
	if err := f2.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for rt.Status().Admitted != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("recovered follower never readmitted: %+v", rt.Status())
		}
		time.Sleep(100 * time.Millisecond)
		rt.CheckNow(ctx)
	}
	served = map[string]int{}
	for i := 0; i < 6; i++ {
		body, backend := getLB()
		if body != want {
			t.Fatalf("post-readmit routed /topk diverges:\nleader: %s\nrouted: %s", want, body)
		}
		served[backend]++
	}
	if served[f2.url] == 0 {
		t.Errorf("readmitted follower got no traffic: %v", served)
	}

	f2.shutdown(t)
	f1.shutdown(t)
	leader.shutdown(t)
}

// TestProcessObsTracing is the observability acceptance scenario, run over
// real daemon processes: a read routed through the fleet edge is traced at
// the router AND at the backend daemon under one trace ID, both traces are
// retrievable from the respective /debug/traces, the fleet-wide /lb/metrics
// merge covers every process, and the pprof surface answers only on its
// dedicated -debug-addr listener, never the public one.
func TestProcessObsTracing(t *testing.T) {
	dir := t.TempDir()
	// -trace-slow -1ns captures every request — the test mode; production
	// keeps the default 50ms gate.
	leader := startDaemon(t,
		"-wal", filepath.Join(dir, "wal"),
		"-measure", "degree",
		"-name", "obstest",
		"-trace-slow", "-1ns",
		"-debug-addr", "127.0.0.1:0",
	)
	if leader.debugURL == "" {
		t.Fatal("leader did not log its -debug-addr listener")
	}
	for i := 0; i < 3; i++ {
		leader.post(t, fmt.Sprintf("t%d", i), csvTable(i))
	}
	follower := startDaemon(t, "-follow", leader.url, "-measure", "degree", "-trace-slow", "-1ns")
	follower.waitVersion(t, leader.version(t), 15*time.Second)

	rt, err := router.New(router.Options{
		Leader:   leader.url,
		Replicas: []string{follower.url},
		Client:   &http.Client{Timeout: 2 * time.Second},
		Logf:     t.Logf,
		Tracer:   &obs.Tracer{SlowThreshold: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckNow(context.Background())
	if st := rt.Status(); st.Admitted != 1 {
		t.Fatalf("follower not admitted: %+v", st)
	}
	lb := httptest.NewServer(rt)
	defer lb.Close()

	// One routed read; the router mints the trace ID and stamps it on both
	// the proxied request and the response.
	resp, err := http.Get(lb.URL + "/topk?k=5&measure=degree")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	id := resp.Header.Get(obs.TraceHeader)
	if len(id) != 16 {
		t.Fatalf("routed response carries no trace ID: %q", id)
	}
	if got := resp.Header.Get(router.BackendHeader); got != follower.url {
		t.Fatalf("read served by %q, want the follower %q", got, follower.url)
	}

	// findTrace digs the trace with our ID out of a /debug/traces dump.
	findTrace := func(body string) map[string]any {
		t.Helper()
		var dump map[string]any
		if err := json.Unmarshal([]byte(body), &dump); err != nil {
			t.Fatal(err)
		}
		for _, tr := range dump["traces"].([]any) {
			tr := tr.(map[string]any)
			if tr["id"] == id {
				return tr
			}
		}
		return nil
	}
	spanNames := func(tr map[string]any) map[string]bool {
		names := make(map[string]bool)
		for _, sp := range tr["spans"].([]any) {
			names[sp.(map[string]any)["name"].(string)] = true
		}
		return names
	}

	// The router's leg: endpoint topk, an upstream span, the backend noted.
	routerResp, err := http.Get(lb.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(routerResp.Body)
	routerResp.Body.Close()
	routerTrace := findTrace(string(rb))
	if routerTrace == nil {
		t.Fatalf("trace %s missing from the router's /debug/traces: %s", id, rb)
	}
	if routerTrace["endpoint"] != "topk" || routerTrace["note"] != follower.url {
		t.Fatalf("router trace = %v", routerTrace)
	}
	if !spanNames(routerTrace)["upstream"] {
		t.Fatalf("router trace lacks the upstream span: %v", routerTrace)
	}

	// The backend's leg of the same request: same ID, handler-level spans.
	backendTrace := findTrace(follower.get(t, "/debug/traces"))
	if backendTrace == nil {
		t.Fatalf("trace %s missing from the follower's /debug/traces", id)
	}
	if backendTrace["endpoint"] != "topk" {
		t.Fatalf("backend trace = %v", backendTrace)
	}
	names := spanNames(backendTrace)
	for _, want := range []string{"parse", "snapshot", "score", "encode"} {
		if !names[want] {
			t.Fatalf("backend trace lacks span %q: %v", want, backendTrace)
		}
	}

	// Fleet-wide metrics cover both daemons plus the router's own edge.
	var fm map[string]any
	if err := json.Unmarshal([]byte(get2(t, lb.URL+"/lb/metrics")), &fm); err != nil {
		t.Fatal(err)
	}
	for _, b := range fm["backends"].([]any) {
		if b.(map[string]any)["error"] != nil {
			t.Fatalf("fleet scrape failed: %v", b)
		}
	}
	fleetTopk := fm["fleet"].(map[string]any)["topk"].(map[string]any)
	if fleetTopk["count"].(float64) < 1 || fleetTopk["p99_ns"].(float64) <= 0 {
		t.Fatalf("fleet topk metrics implausible: %v", fleetTopk)
	}
	// The follower's own /metrics carries its replication lag.
	var fmm map[string]any
	if err := json.Unmarshal([]byte(follower.get(t, "/metrics")), &fmm); err != nil {
		t.Fatal(err)
	}
	repl := fmm["replication"].(map[string]any)
	if repl["leader_reachable"] != true {
		t.Fatalf("follower replication telemetry = %v", repl)
	}

	// pprof answers on the dedicated listener only.
	pr, err := http.Get(leader.debugURL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, pr.Body) //nolint:errcheck
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("pprof on -debug-addr = %d", pr.StatusCode)
	}
	pub, err := http.Get(leader.url + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pub.Body.Close()
	if pub.StatusCode == http.StatusOK {
		t.Fatal("pprof exposed on the public listener")
	}

	follower.shutdown(t)
	leader.shutdown(t)
}

// get2 fetches a URL, expecting 200, and returns the body.
func get2(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d (%s)", url, resp.StatusCode, b)
	}
	return string(b)
}
