// Command domainnetd serves homograph detection over HTTP: a zero-dependency
// daemon holding one in-memory data lake, answering reads from an immutable
// snapshot while table uploads rebuild the DomainNet graph incrementally.
//
// Usage:
//
//	domainnetd [-addr :8080] [-dir path/to/lake] [-name lake]
//	           [-measure bc|bc-exact|bc-eps|lcc|lcc-attr|degree|harmonic]
//	           [-samples 0] [-seed 1] [-workers 0] [-keep-singletons]
//
// Endpoints:
//
//	GET    /topk?k=50&measure=bc   top homograph candidates of the snapshot
//	GET    /score?value=jaguar     one value's score (normalized lookup)
//	GET    /stats                  lake and graph statistics + version
//	GET    /scorers                available measures
//	POST   /tables/{name}          add a table (request body: CSV)
//	DELETE /tables/{name}          remove a table
//
// Reads never block on writes: each response is served from the snapshot
// current when it arrived, stamped with the lake version it reflects.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"domainnet/internal/domainnet"
	"domainnet/internal/lake"
	"domainnet/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "directory of CSV tables to pre-load (optional; empty starts an empty lake)")
	name := flag.String("name", "lake", "lake name when starting empty")
	measure := flag.String("measure", "bc", "default scoring measure")
	samples := flag.Int("samples", 0, "approximate-BC sample count (0 = 1% of nodes)")
	seed := flag.Int64("seed", 1, "random seed for sampling")
	workers := flag.Int("workers", 0, "parallelism for graph build and scoring (0 = all CPUs)")
	keep := flag.Bool("keep-singletons", false, "keep values occurring only once")
	flag.Parse()

	m, ok := domainnet.ParseMeasure(*measure)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown measure %q (valid: %s)\n",
			*measure, strings.Join(domainnet.MeasureNames(), ", "))
		os.Exit(2)
	}

	var l *lake.Lake
	if *dir != "" {
		var err error
		if l, err = lake.LoadDir(*dir); err != nil {
			log.Fatal(err)
		}
	} else {
		l = lake.New(*name)
	}

	s := serve.New(l, domainnet.Config{
		Measure:        m,
		Samples:        *samples,
		Seed:           *seed,
		Workers:        *workers,
		KeepSingletons: *keep,
	})
	log.Printf("domainnetd: serving lake %q (%d tables, snapshot version %d) on %s",
		l.Name, l.NumTables(), s.Version(), *addr)
	log.Fatal(http.ListenAndServe(*addr, s))
}
