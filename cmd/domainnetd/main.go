// Command domainnetd serves homograph detection over HTTP: a zero-dependency
// daemon holding one in-memory data lake, answering reads from an immutable
// snapshot while table uploads rebuild the DomainNet graph incrementally.
//
// Usage:
//
//	domainnetd [-addr :8080] [-dir path/to/lake] [-name lake]
//	           [-snapshot lake.snapshot] [-checkpoint-every 0] [-wal path/to/wal]
//	           [-follow http://leader:8080]
//	           [-measure bc|bc-exact|bc-eps|lcc|lcc-attr|degree|harmonic]
//	           [-warm-measures bc,lcc] [-samples 0] [-seed 1] [-workers 0]
//	           [-keep-singletons] [-trace-slow 50ms] [-debug-addr localhost:6060]
//
// Endpoints:
//
//	GET    /topk?k=50&measure=bc   top homograph candidates of the snapshot
//	GET    /score?value=jaguar     one value's score (normalized lookup)
//	GET    /stats                  lake and graph statistics + version
//	GET    /scorers                available measures
//	GET    /metrics                per-endpoint latency percentiles, runtime and
//	                               warmer telemetry (?format=prom for Prometheus)
//	GET    /debug/traces           captured slow-request traces with named spans
//	POST   /tables                 batch-add tables (multipart, CSV per part)
//	POST   /tables/{name}          add a table (request body: CSV)
//	DELETE /tables/{name}          remove a table
//	GET    /repl/changes?from=V    replication change feed (leader, with -wal)
//	GET    /repl/snapshot          replication state transfer (leader, with -wal)
//
// Reads never block on writes: each response is served from the snapshot
// current when it arrived, stamped with the lake version it reflects.
//
// Durability: with -snapshot set, the daemon warm-starts from the snapshot
// file when it exists and checkpoints back to it on graceful shutdown
// (SIGINT/SIGTERM) and, with -checkpoint-every K, after every K-th publish.
// With -wal set, every acknowledged mutation burst is appended (and fsynced)
// to a segmented write-ahead log *before* it is applied, so recovery —
// snapshot-load followed by WAL replay — loses nothing even on kill -9 or
// power failure; each successful checkpoint truncates the segments it made
// obsolete. Without -wal, a crash loses the mutations since the last
// checkpoint; without either flag, the lake is memory-only.
//
// Pre-warming: with -warm-measures, every publish schedules a background
// precompute of the listed measures on the new snapshot (a newer publish
// cancels the superseded warm), so the first read after a mutation does not
// pay the centrality recompute inline; GET /metrics shows the counters.
//
// Replication: -wal also enables the leader endpoints under /repl/.
// A replica runs `domainnetd -follow http://leader:8080`: it bootstraps from
// the leader's snapshot stream, tails the change feed (long-poll), applies
// each burst through the same incremental rebuild path the leader used, and
// serves reads at the leader's versions; its own mutation endpoints answer
// 403. A replica that falls behind the leader's truncated log re-bootstraps
// from the snapshot stream automatically.
//
// Observability: every request books into a lock-free latency histogram, so
// GET /metrics reports p50/p95/p99 per endpoint (JSON, or Prometheus text
// with ?format=prom). Requests slower than -trace-slow (default 50ms; a
// negative value captures everything — a test and debugging mode) are
// captured with named spans into a bounded ring served by GET /debug/traces.
// -debug-addr exposes net/http/pprof on a separate listener with its own
// mux, so the profiling surface never rides the public address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"domainnet/internal/bipartite"
	"domainnet/internal/domainnet"
	"domainnet/internal/lake"
	"domainnet/internal/obs"
	"domainnet/internal/persist"
	"domainnet/internal/repl"
	"domainnet/internal/serve"
	"domainnet/internal/wal"
)

// config is the parsed command line. Split from main so flag validation is
// unit-testable and process tests can drive the daemon end to end.
type config struct {
	addr            string
	dir             string
	name            string
	snapshot        string
	walDir          string
	follow          string
	checkpointEvery int
	measure         domainnet.Measure
	warmMeasures    []domainnet.Measure
	samples         int
	seed            int64
	workers         int
	keep            bool
	traceSlow       time.Duration
	debugAddr       string
}

// parseFlags parses and validates args (without the program name). It fails
// fast on contradictory flag combinations instead of silently ignoring the
// loser — a daemon that drops the durability flags an operator asked for is
// worse than one that refuses to start.
func parseFlags(args []string) (*config, error) {
	c := &config{}
	var measure, warmMeasures string
	fs := flag.NewFlagSet("domainnetd", flag.ContinueOnError)
	fs.StringVar(&c.addr, "addr", ":8080", "listen address")
	fs.StringVar(&c.dir, "dir", "", "directory of CSV tables to pre-load (ignored when -snapshot exists; empty starts an empty lake)")
	fs.StringVar(&c.name, "name", "lake", "lake name when starting empty")
	fs.StringVar(&c.snapshot, "snapshot", "", "snapshot file: warm-start from it when present, checkpoint to it on shutdown")
	fs.IntVar(&c.checkpointEvery, "checkpoint-every", 0, "also checkpoint after every K publishes (0 = only on shutdown; needs -snapshot)")
	fs.StringVar(&c.walDir, "wal", "", "write-ahead log directory: fsync every mutation burst before acknowledging it, replay on startup, serve /repl/ to followers")
	fs.StringVar(&c.follow, "follow", "", "run as a read-only replica of the leader at this base URL (conflicts with the mutation/durability flags)")
	fs.StringVar(&measure, "measure", "bc", "default scoring measure")
	fs.StringVar(&warmMeasures, "warm-measures", "", "comma-separated measures to pre-warm in the background after every publish (empty disables the warmer)")
	fs.IntVar(&c.samples, "samples", 0, "approximate-BC sample count (0 = 1% of nodes)")
	fs.Int64Var(&c.seed, "seed", 1, "random seed for sampling")
	fs.IntVar(&c.workers, "workers", 0, "parallelism for graph build and scoring (0 = all CPUs)")
	fs.BoolVar(&c.keep, "keep-singletons", false, "keep values occurring only once")
	fs.DurationVar(&c.traceSlow, "trace-slow", 0, "capture traces for requests slower than this (0 = 50ms default; negative captures every request)")
	fs.StringVar(&c.debugAddr, "debug-addr", "", "serve net/http/pprof on this separate address (empty disables; keep it off public interfaces)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	m, ok := domainnet.ParseMeasure(measure)
	if !ok {
		return nil, fmt.Errorf("unknown measure %q (valid: %s)",
			measure, strings.Join(domainnet.MeasureNames(), ", "))
	}
	// A parseable measure name can still lack a scorer (the enum and the
	// scorer registry are separate layers); refusing to start beats a daemon
	// whose every read 500s.
	if !m.Registered() {
		return nil, fmt.Errorf("measure %q has no registered scorer (registered: %s)",
			m, strings.Join(domainnet.Scorers(), ", "))
	}
	c.measure = m
	if warmMeasures != "" {
		seen := make(map[domainnet.Measure]bool)
		for _, name := range strings.Split(warmMeasures, ",") {
			name = strings.TrimSpace(name)
			wm, ok := domainnet.ParseMeasure(name)
			if !ok {
				return nil, fmt.Errorf("-warm-measures: unknown measure %q (valid: %s)",
					name, strings.Join(domainnet.MeasureNames(), ", "))
			}
			if !wm.Registered() {
				return nil, fmt.Errorf("-warm-measures: measure %q has no registered scorer (registered: %s)",
					wm, strings.Join(domainnet.Scorers(), ", "))
			}
			if seen[wm] {
				continue // "bc,bc" warms once, not twice
			}
			seen[wm] = true
			c.warmMeasures = append(c.warmMeasures, wm)
		}
	}
	if c.checkpointEvery < 0 {
		return nil, fmt.Errorf("-checkpoint-every must be non-negative, got %d", c.checkpointEvery)
	}
	if c.checkpointEvery > 0 && c.snapshot == "" {
		return nil, errors.New("-checkpoint-every requires -snapshot (there is nowhere to checkpoint to)")
	}
	if c.walDir != "" && c.dir != "" && c.snapshot == "" {
		// Recovery would replay the log onto whatever the CSV directory
		// happens to contain at restart — an edited file with an unchanged
		// table count passes every version-chain check and yields silently
		// diverged state. A snapshot gives replay a stable base.
		return nil, errors.New("-wal with -dir requires -snapshot (recovery must replay onto the checkpointed base, not the CSV directory's current contents)")
	}
	if c.follow != "" {
		for flagName, set := range map[string]bool{
			"-dir":              c.dir != "",
			"-snapshot":         c.snapshot != "",
			"-wal":              c.walDir != "",
			"-checkpoint-every": c.checkpointEvery > 0,
		} {
			if set {
				return nil, fmt.Errorf("-follow runs a read-only replica that bootstraps from its leader; it conflicts with %s", flagName)
			}
		}
		explicit := map[string]bool{}
		fs.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })
		if explicit["keep-singletons"] {
			// Silently ignoring it would be worse than refusing: the
			// replica adopts the leader's graph semantics so its state
			// stays bit-identical.
			return nil, errors.New("-keep-singletons has no effect with -follow (the replica adopts the leader's setting)")
		}
	}
	return c, nil
}

func (c *config) detectorConfig() domainnet.Config {
	return domainnet.Config{
		Measure:        c.measure,
		Samples:        c.samples,
		Seed:           c.seed,
		Workers:        c.workers,
		KeepSingletons: c.keep,
	}
}

func main() {
	c, err := parseFlags(os.Args[1:])
	if err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "domainnetd:", err)
		}
		os.Exit(2)
	}
	if err := run(c); err != nil {
		log.Fatal(err)
	}
}

func run(c *config) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if c.debugAddr != "" {
		if err := startDebugServer(c.debugAddr, "domainnetd"); err != nil {
			return err
		}
	}
	if c.follow != "" {
		return runFollower(ctx, c, stop)
	}
	return runLeader(ctx, c, stop)
}

// startDebugServer exposes net/http/pprof on its own listener with a
// manually built mux. The profiling surface never registers on the public
// handler: it can dump heap contents and stall the process with profiles,
// so it binds only where the operator explicitly points -debug-addr.
func startDebugServer(addr, name string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // debug-only listener, dies with the process
	log.Printf("%s: debug (pprof) listening on %s", name, ln.Addr())
	return nil
}

// serveUntilShutdown listens on c.addr, serves handler, and drains on
// SIGINT/SIGTERM. It logs the bound address ("listening on …"), which is
// how process-level tests using port 0 discover the daemon. stop restores
// the default signal disposition once shutdown begins, so a second signal
// force-kills a daemon stuck draining or checkpointing instead of being
// swallowed.
func serveUntilShutdown(ctx context.Context, c *config, stop func(), handler http.Handler, banner string) error {
	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("domainnetd: listening on %s", ln.Addr())
	log.Print(banner)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Print("domainnetd: shutting down (again to force)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("domainnetd: shutdown: %v", err)
	}
	return nil
}

func runLeader(ctx context.Context, c *config, stop func()) error {
	// Warm start: a snapshot file beats -dir, because it carries the derived
	// graph state a CSV directory cannot.
	var l *lake.Lake
	var warmGraph *bipartite.Graph
	snapshotLoaded := false
	if c.snapshot != "" {
		switch sn, err := persist.Load(c.snapshot); {
		case err == nil:
			l, warmGraph = sn.Lake, sn.Graph
			snapshotLoaded = true
			if warmGraph != nil && warmGraph.KeepsSingletons() != c.keep {
				// Don't let the serving layer reject the graph silently: a
				// flag change voiding the snapshot turns the restart into a
				// full build, and the operator should see why.
				log.Printf("domainnetd: snapshot graph was built with keep-singletons=%v but -keep-singletons=%v; discarding it and cold-building",
					warmGraph.KeepsSingletons(), c.keep)
				warmGraph = nil
			}
			log.Printf("domainnetd: warm start from %s (lake %q, %d tables, version %d, graph %v)",
				c.snapshot, l.Name, l.NumTables(), l.Version(), warmGraph != nil)
		case errors.Is(err, os.ErrNotExist):
			log.Printf("domainnetd: %s absent, cold start (will checkpoint there)", c.snapshot)
		default:
			return err
		}
	}
	dirLoaded := false
	if l == nil {
		if c.dir != "" {
			var err error
			if l, err = lake.LoadDir(c.dir); err != nil {
				return err
			}
			dirLoaded = true
		} else {
			l = lake.New(c.name)
		}
	}

	// The write-ahead log: replay whatever outlived the last checkpoint,
	// then hook every future burst through the leader's OnCommit.
	var wlog *wal.Log
	var leader *repl.Leader
	if c.walDir != "" {
		if c.snapshot == "" {
			// Legal — the WAL alone is full durability (recovery replays
			// the whole history from an empty lake) — but nothing ever
			// retires old segments without a checkpoint to truncate against,
			// so the log and recovery time grow with every mutation.
			log.Print("domainnetd: -wal without -snapshot: the log grows unbounded and restarts replay all of history; add -snapshot -checkpoint-every to retire old segments")
		}
		var err error
		if wlog, err = wal.Open(c.walDir, wal.Options{}); err != nil {
			return err
		}
		defer func() {
			if cerr := wlog.Close(); cerr != nil {
				log.Printf("domainnetd: closing wal: %v", cerr)
			}
		}()
		if _, _, hasHistory := wlog.Bounds(); hasHistory && dirLoaded {
			// The log's records chain from the lake state that existed when
			// they were committed — which was pinned by a snapshot, not by
			// the CSV directory, whose contents may have changed since. An
			// edited CSV with an unchanged table count would pass every
			// version-chain check and replay into silently diverged state.
			return fmt.Errorf("domainnetd: %s contains history but the snapshot %s is missing, leaving only the mutable CSV directory as a replay base; restore the snapshot file (or move the wal directory aside to discard its history)",
				c.walDir, c.snapshot)
		}
		replayed := 0
		last, err := wlog.Replay(l.Version(), func(rec *wal.Record) error {
			for _, name := range rec.Remove {
				if !l.RemoveTable(name) {
					return fmt.Errorf("wal replay: burst %d→%d removes unknown table %q (snapshot and log disagree)",
						rec.PrevVersion, rec.Version, name)
				}
			}
			for _, t := range rec.Add {
				if err := l.Add(t); err != nil {
					return fmt.Errorf("wal replay: burst %d→%d: %w", rec.PrevVersion, rec.Version, err)
				}
			}
			if l.Version() != rec.Version {
				return fmt.Errorf("wal replay: burst %d→%d left the lake at %d",
					rec.PrevVersion, rec.Version, l.Version())
			}
			replayed++
			return nil
		})
		if err != nil {
			return err
		}
		if replayed > 0 {
			log.Printf("domainnetd: replayed %d wal burst(s), lake at version %d", replayed, last)
			if warmGraph != nil {
				// The persisted graph matched the snapshot's lake; catch it
				// up to the replayed mutations incrementally so the serving
				// layer still warm-starts without a full build.
				attrs := l.Attributes()
				warmGraph = bipartite.Rebuild(warmGraph, attrs, bipartite.Changed(warmGraph, attrs),
					bipartite.Options{KeepSingletons: c.keep, Workers: c.workers})
			}
		}
		leader = repl.NewLeader(wlog)
	}

	// The periodic checkpointer: AfterPublish signals (non-blocking, write
	// lock held) and a goroutine persists outside the hot path.
	ckpt := make(chan struct{}, 1)
	var opts serve.Options
	opts.Graph = warmGraph
	opts.WarmMeasures = c.warmMeasures
	opts.Tracer = &obs.Tracer{SlowThreshold: c.traceSlow}
	if leader != nil {
		opts.OnCommit = leader.OnCommit
	}
	if c.checkpointEvery > 0 {
		var writes int
		opts.AfterPublish = func(uint64) {
			writes++
			if writes%c.checkpointEvery == 0 {
				select {
				case ckpt <- struct{}{}:
				default: // a checkpoint is already pending; coalesce
				}
			}
		}
	}

	s := serve.NewWithOptions(l, c.detectorConfig(), opts)
	if leader != nil {
		leader.Attach(s)
	}

	// Checkpoints encode under the server's write lock (the lake must not
	// mutate mid-encode) but pay the disk write and fsyncs outside it, so
	// writers stall only for the in-memory marshal, never for I/O. ckptMu
	// keeps a slow periodic write from racing the shutdown checkpoint. A
	// durable checkpoint retires the WAL segments it covers.
	var ckptMu sync.Mutex
	checkpoint := func(reason string) error {
		if c.snapshot == "" {
			return nil
		}
		ckptMu.Lock()
		defer ckptMu.Unlock()
		var buf []byte
		var version uint64
		if err := s.Checkpoint(func(l *lake.Lake, g *bipartite.Graph) error {
			version = l.Version()
			buf = persist.Marshal(l, g)
			return nil
		}); err != nil {
			log.Printf("domainnetd: checkpoint (%s) failed: %v", reason, err)
			return err
		}
		if err := persist.WriteFile(c.snapshot, buf); err != nil {
			log.Printf("domainnetd: checkpoint (%s) failed: %v", reason, err)
			return err
		}
		if wlog != nil {
			if err := wlog.Truncate(version); err != nil {
				log.Printf("domainnetd: wal truncate after checkpoint: %v", err)
			}
		}
		log.Printf("domainnetd: checkpointed %s at version %d (%s)", c.snapshot, version, reason)
		return nil
	}
	if c.snapshot != "" && !snapshotLoaded {
		// Pin the cold-start base durably before the first WAL record can
		// chain on top of it: a crash before any other checkpoint must
		// recover by replaying onto this exact state, never onto whatever
		// the CSV directory contains at restart time.
		if err := checkpoint("initial"); err != nil {
			return err
		}
	}
	go func() {
		for range ckpt {
			checkpoint("periodic") //nolint:errcheck // logged inside; retried next signal
		}
	}()

	err := serveUntilShutdown(ctx, c, stop, s,
		fmt.Sprintf("domainnetd: serving lake %q (%d tables, snapshot version %d, wal %v)",
			l.Name, l.NumTables(), s.Version(), wlog != nil))
	if err != nil {
		return err
	}
	s.Close()              // stop any in-flight warm; the checkpoint needs the CPU
	checkpoint("shutdown") //nolint:errcheck // logged inside; nothing left to retry
	return nil
}

func runFollower(ctx context.Context, c *config, stop func()) error {
	f := &repl.Follower{
		Leader:       strings.TrimRight(c.follow, "/"),
		Config:       c.detectorConfig(),
		WarmMeasures: c.warmMeasures,
		Client:       &http.Client{Timeout: repl.DefaultPollTimeout + 15*time.Second},
		Logf:         log.Printf,
		Tracer:       &obs.Tracer{SlowThreshold: c.traceSlow},
	}
	go f.Run(ctx) //nolint:errcheck // exits with ctx; errors are logged via Logf
	return serveUntilShutdown(ctx, c, stop, f,
		fmt.Sprintf("domainnetd: read-only replica of %s", f.Leader))
}
