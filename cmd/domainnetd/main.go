// Command domainnetd serves homograph detection over HTTP: a zero-dependency
// daemon holding one in-memory data lake, answering reads from an immutable
// snapshot while table uploads rebuild the DomainNet graph incrementally.
//
// Usage:
//
//	domainnetd [-addr :8080] [-dir path/to/lake] [-name lake]
//	           [-snapshot lake.snapshot] [-checkpoint-every 0]
//	           [-measure bc|bc-exact|bc-eps|lcc|lcc-attr|degree|harmonic]
//	           [-samples 0] [-seed 1] [-workers 0] [-keep-singletons]
//
// Endpoints:
//
//	GET    /topk?k=50&measure=bc   top homograph candidates of the snapshot
//	GET    /score?value=jaguar     one value's score (normalized lookup)
//	GET    /stats                  lake and graph statistics + version
//	GET    /scorers                available measures
//	POST   /tables                 batch-add tables (multipart, CSV per part)
//	POST   /tables/{name}          add a table (request body: CSV)
//	DELETE /tables/{name}          remove a table
//
// Reads never block on writes: each response is served from the snapshot
// current when it arrived, stamped with the lake version it reflects.
//
// Durability: with -snapshot set, the daemon warm-starts from the snapshot
// file when it exists — the persisted graph is loaded instead of rebuilt, so
// a restart of a large lake skips the full construction — and checkpoints the
// lake+graph back to the file on graceful shutdown (SIGINT/SIGTERM) and,
// with -checkpoint-every K, after every K-th publish. Checkpoints are
// written atomically (temp file + rename), so a crash mid-write never
// corrupts the previous snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"domainnet/internal/bipartite"
	"domainnet/internal/domainnet"
	"domainnet/internal/lake"
	"domainnet/internal/persist"
	"domainnet/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "directory of CSV tables to pre-load (ignored when -snapshot exists; empty starts an empty lake)")
	name := flag.String("name", "lake", "lake name when starting empty")
	snapshot := flag.String("snapshot", "", "snapshot file: warm-start from it when present, checkpoint to it on shutdown")
	checkpointEvery := flag.Int("checkpoint-every", 0, "also checkpoint after every K publishes (0 = only on shutdown; needs -snapshot)")
	measure := flag.String("measure", "bc", "default scoring measure")
	samples := flag.Int("samples", 0, "approximate-BC sample count (0 = 1% of nodes)")
	seed := flag.Int64("seed", 1, "random seed for sampling")
	workers := flag.Int("workers", 0, "parallelism for graph build and scoring (0 = all CPUs)")
	keep := flag.Bool("keep-singletons", false, "keep values occurring only once")
	flag.Parse()

	m, ok := domainnet.ParseMeasure(*measure)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown measure %q (valid: %s)\n",
			*measure, strings.Join(domainnet.MeasureNames(), ", "))
		os.Exit(2)
	}
	if *checkpointEvery > 0 && *snapshot == "" {
		fmt.Fprintln(os.Stderr, "-checkpoint-every requires -snapshot")
		os.Exit(2)
	}

	// Warm start: a snapshot file beats -dir, because it carries the derived
	// graph state a CSV directory cannot.
	var l *lake.Lake
	var warmGraph *bipartite.Graph
	if *snapshot != "" {
		switch sn, err := persist.Load(*snapshot); {
		case err == nil:
			l, warmGraph = sn.Lake, sn.Graph
			if warmGraph != nil && warmGraph.KeepsSingletons() != *keep {
				// Don't let the serving layer reject the graph silently: a
				// flag change voiding the snapshot turns the restart into a
				// full build, and the operator should see why.
				log.Printf("domainnetd: snapshot graph was built with keep-singletons=%v but -keep-singletons=%v; discarding it and cold-building",
					warmGraph.KeepsSingletons(), *keep)
				warmGraph = nil
			}
			log.Printf("domainnetd: warm start from %s (lake %q, %d tables, version %d, graph %v)",
				*snapshot, l.Name, l.NumTables(), l.Version(), warmGraph != nil)
		case errors.Is(err, os.ErrNotExist):
			log.Printf("domainnetd: %s absent, cold start (will checkpoint there)", *snapshot)
		default:
			log.Fatal(err)
		}
	}
	if l == nil {
		if *dir != "" {
			var err error
			if l, err = lake.LoadDir(*dir); err != nil {
				log.Fatal(err)
			}
		} else {
			l = lake.New(*name)
		}
	}

	// The periodic checkpointer: AfterPublish signals (non-blocking, write
	// lock held) and a goroutine persists outside the hot path.
	ckpt := make(chan struct{}, 1)
	var opts serve.Options
	opts.Graph = warmGraph
	if *checkpointEvery > 0 {
		var writes int
		opts.AfterPublish = func(uint64) {
			writes++
			if writes%*checkpointEvery == 0 {
				select {
				case ckpt <- struct{}{}:
				default: // a checkpoint is already pending; coalesce
				}
			}
		}
	}

	s := serve.NewWithOptions(l, domainnet.Config{
		Measure:        m,
		Samples:        *samples,
		Seed:           *seed,
		Workers:        *workers,
		KeepSingletons: *keep,
	}, opts)

	// Checkpoints encode under the server's write lock (the lake must not
	// mutate mid-encode) but pay the disk write and fsyncs outside it, so
	// writers stall only for the in-memory marshal, never for I/O. ckptMu
	// keeps a slow periodic write from racing the shutdown checkpoint.
	var ckptMu sync.Mutex
	checkpoint := func(reason string) {
		if *snapshot == "" {
			return
		}
		ckptMu.Lock()
		defer ckptMu.Unlock()
		var buf []byte
		if err := s.Checkpoint(func(l *lake.Lake, g *bipartite.Graph) error {
			buf = persist.Marshal(l, g)
			return nil
		}); err != nil {
			log.Printf("domainnetd: checkpoint (%s) failed: %v", reason, err)
			return
		}
		if err := persist.WriteFile(*snapshot, buf); err != nil {
			log.Printf("domainnetd: checkpoint (%s) failed: %v", reason, err)
			return
		}
		log.Printf("domainnetd: checkpointed %s (%s)", *snapshot, reason)
	}
	go func() {
		for range ckpt {
			checkpoint("periodic")
		}
	}()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("domainnetd: serving lake %q (%d tables, snapshot version %d) on %s",
		l.Name, l.NumTables(), s.Version(), *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Print("domainnetd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("domainnetd: shutdown: %v", err)
	}
	checkpoint("shutdown")
}
