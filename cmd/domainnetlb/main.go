// Command domainnetlb fronts a domainnetd serving fleet: a zero-dependency
// read-router that spreads /topk, /score, /stats and /scorers across
// caught-up follower replicas and forwards everything else — mutations above
// all — to the leader.
//
// Usage:
//
//	domainnetlb -leader http://leader:8080 \
//	            [-replicas http://r1:8080,http://r2:8080] \
//	            [-addr :8090] [-max-lag 8] [-readmit-lag 4] \
//	            [-check-interval 2s] [-trace-slow 50ms] \
//	            [-debug-addr localhost:6061]
//
// The router probes the leader's version and every replica's /repl/status on
// -check-interval, ejecting a replica whose lag exceeds -max-lag and
// readmitting it once it has caught back up to -readmit-lag (a hysteresis
// band, so replicas hovering at the threshold do not flap). A replica that
// fails a proxied request is ejected immediately. With no replica admitted,
// reads fall back to the leader. GET /lb/status reports the fleet view; every
// proxied response carries X-Domainnet-Backend naming the server that
// actually answered.
//
// Observability: the router is the fleet's trace edge — every proxied
// request is minted an X-Domainnet-Trace ID (stamped on the outbound
// request, echoed on the response), so a slow request captured here and at
// the backend shares one ID; GET /debug/traces serves the captured ring,
// gated by -trace-slow. GET /lb/metrics scrapes every backend's /metrics
// and merges the per-endpoint latency histograms bucket-wise into
// fleet-wide percentiles (?format=prom for Prometheus text). -debug-addr
// exposes net/http/pprof on a separate listener with its own mux.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"domainnet/internal/obs"
	"domainnet/internal/router"
)

// config is the parsed command line, split from main so validation is
// unit-testable.
type config struct {
	addr          string
	leader        string
	replicas      []string
	maxLag        uint64
	readmitLag    uint64
	checkInterval time.Duration
	traceSlow     time.Duration
	debugAddr     string
}

func parseFlags(args []string) (*config, error) {
	c := &config{}
	var replicas string
	var maxLag, readmitLag int
	fs := flag.NewFlagSet("domainnetlb", flag.ContinueOnError)
	fs.StringVar(&c.addr, "addr", ":8090", "listen address")
	fs.StringVar(&c.leader, "leader", "", "leader base URL (required)")
	fs.StringVar(&replicas, "replicas", "", "comma-separated follower base URLs to spread reads across")
	fs.IntVar(&maxLag, "max-lag", router.DefaultMaxLag, "eject a replica lagging more than this many versions behind the leader")
	fs.IntVar(&readmitLag, "readmit-lag", 0, "readmit an ejected replica at or below this lag (0 = max-lag/2)")
	fs.DurationVar(&c.checkInterval, "check-interval", router.DefaultCheckInterval, "health-probe cadence")
	fs.DurationVar(&c.traceSlow, "trace-slow", 0, "capture traces for proxied requests slower than this (0 = 50ms default; negative captures every request)")
	fs.StringVar(&c.debugAddr, "debug-addr", "", "serve net/http/pprof on this separate address (empty disables; keep it off public interfaces)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if c.leader == "" {
		return nil, errors.New("-leader is required")
	}
	if maxLag <= 0 {
		return nil, fmt.Errorf("-max-lag must be positive, got %d", maxLag)
	}
	if readmitLag < 0 {
		return nil, fmt.Errorf("-readmit-lag must be non-negative, got %d", readmitLag)
	}
	if readmitLag > maxLag {
		return nil, fmt.Errorf("-readmit-lag %d exceeds -max-lag %d", readmitLag, maxLag)
	}
	if c.checkInterval <= 0 {
		return nil, fmt.Errorf("-check-interval must be positive, got %v", c.checkInterval)
	}
	c.maxLag, c.readmitLag = uint64(maxLag), uint64(readmitLag)
	for _, r := range strings.Split(replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			c.replicas = append(c.replicas, r)
		}
	}
	return c, nil
}

func main() {
	c, err := parseFlags(os.Args[1:])
	if err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "domainnetlb:", err)
		}
		os.Exit(2)
	}
	if err := run(c); err != nil {
		log.Fatal(err)
	}
}

func run(c *config) error {
	rt, err := router.New(router.Options{
		Leader:        c.leader,
		Replicas:      c.replicas,
		MaxLag:        c.maxLag,
		ReadmitLag:    c.readmitLag,
		CheckInterval: c.checkInterval,
		Logf:          log.Printf,
		Tracer:        &obs.Tracer{SlowThreshold: c.traceSlow},
	})
	if err != nil {
		return err
	}
	if c.debugAddr != "" {
		if err := startDebugServer(c.debugAddr); err != nil {
			return err
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go rt.Run(ctx) //nolint:errcheck // exits with ctx; transitions are logged

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("domainnetlb: listening on %s", ln.Addr())
	log.Printf("domainnetlb: routing reads for leader %s across %d replica(s)", c.leader, len(c.replicas))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Print("domainnetlb: shutting down (again to force)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("domainnetlb: shutdown: %v", err)
	}
	return nil
}

// startDebugServer exposes net/http/pprof on its own listener with a
// manually built mux — the profiling surface never registers on the public
// routing handler.
func startDebugServer(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // debug-only listener, dies with the process
	log.Printf("domainnetlb: debug (pprof) listening on %s", ln.Addr())
	return nil
}
