package main

import (
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	c, err := parseFlags([]string{
		"-leader", "http://leader:8080",
		"-replicas", "http://r1:8080, http://r2:8080 ,",
		"-max-lag", "10",
		"-readmit-lag", "3",
		"-check-interval", "500ms",
		"-addr", ":9999",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.leader != "http://leader:8080" || c.addr != ":9999" {
		t.Errorf("leader %q addr %q", c.leader, c.addr)
	}
	if len(c.replicas) != 2 || c.replicas[0] != "http://r1:8080" || c.replicas[1] != "http://r2:8080" {
		t.Errorf("replicas = %q, want the two trimmed URLs", c.replicas)
	}
	if c.maxLag != 10 || c.readmitLag != 3 || c.checkInterval != 500*time.Millisecond {
		t.Errorf("thresholds = %d/%d/%v", c.maxLag, c.readmitLag, c.checkInterval)
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	c, err := parseFlags([]string{"-leader", "http://leader:8080"})
	if err != nil {
		t.Fatal(err)
	}
	if c.maxLag == 0 || c.checkInterval <= 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
	if c.readmitLag != 0 {
		t.Errorf("readmit-lag default = %d, want 0 (router derives max-lag/2)", c.readmitLag)
	}
	if len(c.replicas) != 0 {
		t.Errorf("empty -replicas parsed as %q", c.replicas)
	}
}

func TestParseFlagsRejects(t *testing.T) {
	for _, args := range [][]string{
		{},                                       // missing leader
		{"-leader", "http://x", "-max-lag", "0"}, // zero lag budget
		{"-leader", "http://x", "-max-lag", "-2"},                     // negative
		{"-leader", "http://x", "-readmit-lag", "-1"},                 // negative
		{"-leader", "http://x", "-max-lag", "2", "-readmit-lag", "5"}, // inverted band
		{"-leader", "http://x", "-check-interval", "0s"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%q) succeeded, want an error", args)
		}
	}
}
