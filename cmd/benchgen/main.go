// Command benchgen materializes the benchmark data lakes as CSV directories
// so they can be inspected or fed to cmd/domainnet.
//
// Usage:
//
//	benchgen -out DIR [-dataset sb|tus|tus-i|nyc] [-scale small|medium|full] [-seed 1]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"domainnet/internal/datagen"
	"domainnet/internal/experiments"
	"domainnet/internal/lake"
	"domainnet/internal/union"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	dataset := flag.String("dataset", "sb", "dataset: sb, tus, tus-i or nyc")
	scaleFlag := flag.String("scale", "small", "scale for tus/tus-i/nyc: small, medium or full")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	scale := experiments.ScaleSmall
	switch *scaleFlag {
	case "medium":
		scale = experiments.ScaleMedium
	case "full":
		scale = experiments.ScaleFull
	}

	switch *dataset {
	case "sb":
		sb := datagen.NewSB(*seed)
		exitOn(sb.Lake.SaveDir(*out))
		exitOn(writeGroundTruth(filepath.Join(*out, "ground_truth_homographs.txt"), sb.Homographs))
		fmt.Printf("wrote SB (%d tables, %d homographs) to %s\n",
			sb.Lake.NumTables(), len(sb.Homographs), *out)
	case "tus", "tus-i":
		cfg := experiments.TUSConfigFor(scale)
		cfg.Seed = *seed
		gt := datagen.TUS(cfg)
		if *dataset == "tus-i" {
			cfg.Homographs = 0
			gt = datagen.TUS(cfg).RemoveHomographs()
		}
		exitOn(saveAttrs(gt, *out))
		exitOn(writeGroundTruth(filepath.Join(*out, "ground_truth_homographs.txt"), gt.Homographs()))
		fmt.Printf("wrote %s (%d attributes, %d homographs) to %s\n",
			*dataset, len(gt.Attrs), len(gt.Homographs()), *out)
	case "nyc":
		nycScale := map[experiments.Scale]float64{
			experiments.ScaleSmall: 0.02, experiments.ScaleMedium: 0.1, experiments.ScaleFull: 1.0,
		}[scale]
		gt := experiments.NYCGroundTruth(nycScale)
		exitOn(saveAttrs(gt, *out))
		fmt.Printf("wrote nyc scale %.2f (%d attributes) to %s\n", nycScale, len(gt.Attrs), *out)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
}

// saveAttrs writes generator attributes as one CSV per table, repeating
// values per their frequency so a reload reproduces the same graph.
func saveAttrs(gt *union.GroundTruth, dir string) error {
	byTable := map[string][]lake.Attribute{}
	var order []string
	for _, a := range gt.Attrs {
		if _, ok := byTable[a.Table]; !ok {
			order = append(order, a.Table)
		}
		byTable[a.Table] = append(byTable[a.Table], a)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range order {
		attrs := byTable[name]
		f, err := os.Create(filepath.Join(dir, name+".csv"))
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		header := make([]string, len(attrs))
		cols := make([][]string, len(attrs))
		rows := 0
		for i, a := range attrs {
			header[i] = a.Column
			for j, v := range a.Values {
				n := 1
				if a.Freqs != nil {
					n = a.Freqs[j]
				}
				for r := 0; r < n; r++ {
					cols[i] = append(cols[i], v)
				}
			}
			if len(cols[i]) > rows {
				rows = len(cols[i])
			}
		}
		if err := w.Write(header); err != nil {
			f.Close()
			return err
		}
		rec := make([]string, len(attrs))
		for r := 0; r < rows; r++ {
			for i := range cols {
				if r < len(cols[i]) {
					rec[i] = cols[i][r]
				} else {
					rec[i] = ""
				}
			}
			if err := w.Write(rec); err != nil {
				f.Close()
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writeGroundTruth stores one homograph per line. The file deliberately
// uses a .txt extension: lake.LoadDir ingests every .csv in a directory,
// and the ground truth must not become a 14th table of the lake.
func writeGroundTruth(path string, homographs []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, h := range homographs {
		if _, err := fmt.Fprintln(f, h); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
