// Command domainnetvet runs the project's stdlib-only static-analysis suite
// (internal/lint) over the given package patterns and reports every invariant
// violation with its source position.
//
// Usage:
//
//	domainnetvet [-json] [-list] [-run analyzer[,analyzer]] [packages]
//
// With no patterns it checks ./... . -list prints the analyzer catalog
// (name, one-line doc, and whether the check is interprocedural) instead of
// running anything; combined with -json it emits the catalog as JSON. Exit
// status: 0 clean, 1 diagnostics reported, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"domainnet/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("domainnetvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON instead of text")
	listOnly := fs.Bool("list", false, "print the analyzer catalog and exit")
	runFilter := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: domainnetvet [-json] [-list] [-run analyzer[,analyzer]] [packages]")
		fs.PrintDefaults()
		fmt.Fprintln(stderr, "\nanalyzers:")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name(), a.Doc())
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *runFilter != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*runFilter, ",")...)
		if err != nil {
			fmt.Fprintln(stderr, "domainnetvet:", err)
			return 2
		}
	}

	if *listOnly {
		if err := writeCatalog(stdout, analyzers, *jsonOut); err != nil {
			fmt.Fprintln(stderr, "domainnetvet:", err)
			return 2
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "domainnetvet:", err)
		return 2
	}
	if *jsonOut {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "domainnetvet:", err)
			return 2
		}
	} else if err := lint.WriteText(stdout, diags); err != nil {
		fmt.Fprintln(stderr, "domainnetvet:", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// catalogEntry is one -list -json row.
type catalogEntry struct {
	Name            string `json:"name"`
	Doc             string `json:"doc"`
	Interprocedural bool   `json:"interprocedural"`
}

// writeCatalog prints the analyzer catalog, honoring any -run subset.
func writeCatalog(w io.Writer, analyzers []lint.Analyzer, asJSON bool) error {
	if asJSON {
		entries := make([]catalogEntry, 0, len(analyzers))
		for _, a := range analyzers {
			entries = append(entries, catalogEntry{
				Name:            a.Name(),
				Doc:             a.Doc(),
				Interprocedural: lint.Interprocedural(a),
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(entries)
	}
	for _, a := range analyzers {
		scope := "package"
		if lint.Interprocedural(a) {
			scope = "interprocedural"
		}
		if _, err := fmt.Fprintf(w, "%-14s %-16s %s\n", a.Name(), scope, a.Doc()); err != nil {
			return err
		}
	}
	return nil
}
