// Command domainnetvet runs the project's stdlib-only static-analysis suite
// (internal/lint) over the given package patterns and reports every invariant
// violation with its source position.
//
// Usage:
//
//	domainnetvet [-json] [-run analyzer[,analyzer]] [packages]
//
// With no patterns it checks ./... . Exit status: 0 clean, 1 diagnostics
// reported, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"domainnet/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("domainnetvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON instead of text")
	runFilter := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: domainnetvet [-json] [-run analyzer[,analyzer]] [packages]")
		fs.PrintDefaults()
		fmt.Fprintln(stderr, "\nanalyzers:")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name(), a.Doc())
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *runFilter != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*runFilter, ",")...)
		if err != nil {
			fmt.Fprintln(stderr, "domainnetvet:", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := lint.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "domainnetvet:", err)
		return 2
	}
	if *jsonOut {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "domainnetvet:", err)
			return 2
		}
	} else if err := lint.WriteText(stdout, diags); err != nil {
		fmt.Fprintln(stderr, "domainnetvet:", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
