package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"strings"
	"testing"
)

const seededFixture = "./internal/lint/testdata/src/ctxcancel"

func chdirModuleRoot(t *testing.T) {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	t.Chdir(strings.TrimSpace(string(out)))
}

func TestExitCodeOnSeededViolation(t *testing.T) {
	chdirModuleRoot(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-run", "ctxcancel", seededFixture}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "ctxcancel") {
		t.Fatalf("text output missing analyzer name:\n%s", stdout.String())
	}
}

func TestExitCodeCleanPackage(t *testing.T) {
	chdirModuleRoot(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"./internal/engine"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", got, stdout.String(), stderr.String())
	}
}

// TestRunFilterScopesAnalyzers proves -run reproduces one analyzer at a
// time: the seeded ctxcancel fixture is clean under atomicsnap alone.
func TestRunFilterScopesAnalyzers(t *testing.T) {
	chdirModuleRoot(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-run", "atomicsnap", seededFixture}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", got, stdout.String(), stderr.String())
	}
}

func TestJSONFlag(t *testing.T) {
	chdirModuleRoot(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", "-run", "ctxcancel", seededFixture}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", got, stderr.String())
	}
	var report struct {
		Count       int `json:"count"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			Line     int    `json:"line"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, stdout.String())
	}
	if report.Count == 0 || len(report.Diagnostics) != report.Count {
		t.Fatalf("inconsistent report: %+v", report)
	}
	for _, d := range report.Diagnostics {
		if d.Analyzer != "ctxcancel" || d.Line == 0 {
			t.Fatalf("bad diagnostic in report: %+v", d)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	chdirModuleRoot(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-run", "nosuchanalyzer", "./..."}, &stdout, &stderr); got != 2 {
		t.Fatalf("unknown -run analyzer: exit = %d, want 2", got)
	}
	if !strings.Contains(stderr.String(), "nosuchanalyzer") {
		t.Fatalf("stderr does not name the bad analyzer: %s", stderr.String())
	}
	stderr.Reset()
	if got := run([]string{"./does/not/exist"}, &stdout, &stderr); got != 2 {
		t.Fatalf("bad pattern: exit = %d, want 2", got)
	}
}
