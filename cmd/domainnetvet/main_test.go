package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"strings"
	"testing"
)

const seededFixture = "./internal/lint/testdata/src/ctxcancel"

func chdirModuleRoot(t *testing.T) {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	t.Chdir(strings.TrimSpace(string(out)))
}

func TestExitCodeOnSeededViolation(t *testing.T) {
	chdirModuleRoot(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-run", "ctxcancel", seededFixture}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "ctxcancel") {
		t.Fatalf("text output missing analyzer name:\n%s", stdout.String())
	}
}

func TestExitCodeCleanPackage(t *testing.T) {
	chdirModuleRoot(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"./internal/engine"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", got, stdout.String(), stderr.String())
	}
}

// TestRunFilterScopesAnalyzers proves -run reproduces one analyzer at a
// time: the seeded ctxcancel fixture is clean under atomicsnap alone.
func TestRunFilterScopesAnalyzers(t *testing.T) {
	chdirModuleRoot(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-run", "atomicsnap", seededFixture}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", got, stdout.String(), stderr.String())
	}
}

func TestJSONFlag(t *testing.T) {
	chdirModuleRoot(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", "-run", "ctxcancel", seededFixture}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", got, stderr.String())
	}
	var report struct {
		Count       int `json:"count"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			Line     int    `json:"line"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, stdout.String())
	}
	if report.Count == 0 || len(report.Diagnostics) != report.Count {
		t.Fatalf("inconsistent report: %+v", report)
	}
	for _, d := range report.Diagnostics {
		if d.Analyzer != "ctxcancel" || d.Line == 0 {
			t.Fatalf("bad diagnostic in report: %+v", d)
		}
	}
}

// TestListCatalog prints the analyzer catalog without loading any packages.
func TestListCatalog(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, name := range []string{"ctxcancel", "lockhold", "lockorder", "goroleak", "errdrop"} {
		if !strings.Contains(out, name) {
			t.Fatalf("-list output missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "interprocedural") {
		t.Fatalf("-list output does not mark interprocedural analyzers:\n%s", out)
	}
}

func TestListCatalogJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list", "-json"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", got, stderr.String())
	}
	var entries []struct {
		Name            string `json:"name"`
		Doc             string `json:"doc"`
		Interprocedural bool   `json:"interprocedural"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &entries); err != nil {
		t.Fatalf("-list -json output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(entries) != 8 {
		t.Fatalf("catalog has %d entries, want 8: %+v", len(entries), entries)
	}
	interp := map[string]bool{}
	for _, e := range entries {
		if e.Name == "" || e.Doc == "" {
			t.Fatalf("catalog entry with empty field: %+v", e)
		}
		interp[e.Name] = e.Interprocedural
	}
	if !interp["lockorder"] || interp["versionheader"] {
		t.Fatalf("interprocedural flags wrong: %+v", interp)
	}
}

// TestListHonorsRunFilter scopes the catalog like a run would be scoped.
func TestListHonorsRunFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list", "-run", "lockorder,errdrop"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", got, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "lockorder") || !strings.HasPrefix(lines[1], "errdrop") {
		t.Fatalf("-list -run output wrong:\n%s", stdout.String())
	}
}

func TestUsageErrors(t *testing.T) {
	chdirModuleRoot(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-run", "nosuchanalyzer", "./..."}, &stdout, &stderr); got != 2 {
		t.Fatalf("unknown -run analyzer: exit = %d, want 2", got)
	}
	if !strings.Contains(stderr.String(), "nosuchanalyzer") {
		t.Fatalf("stderr does not name the bad analyzer: %s", stderr.String())
	}
	stderr.Reset()
	if got := run([]string{"./does/not/exist"}, &stdout, &stderr); got != 2 {
		t.Fatalf("bad pattern: exit = %d, want 2", got)
	}
}
