// Package bench anchors the repository root and hosts the benchmark harness
// (bench_test.go) that regenerates every table and figure of the paper's
// evaluation. The library itself lives under internal/; binaries under cmd/;
// runnable examples under examples/.
package bench
