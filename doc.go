// Package bench anchors the repository root and hosts the benchmark harness
// (bench_test.go, bench_engine_test.go) that regenerates every table and
// figure of the paper's evaluation, plus the machine-readable snapshot
// emitter (benchjson_test.go, opt-in via DOMAINNET_BENCH_JSON=1) that writes
// BENCH_<date>.json with ns/op per pipeline stage.
//
// The library itself lives under internal/; binaries under cmd/; runnable
// examples under examples/.
//
// # Architecture
//
// internal/engine is the execution substrate shared by every layer: the
// Graph view, the single engine.Opts options struct, the Scorer interface
// with its process-wide registry, the pooled per-worker BFS Arena, and the
// Parallel shard driver. internal/centrality implements the measures as
// registered Scorers; internal/bipartite builds the DomainNet graph in
// parallel; internal/domainnet dispatches measures through the registry.
//
// # Node numbering
//
// Throughout the repository, graph nodes follow one convention: value nodes
// occupy ids [0, NumValues), attribute nodes occupy
// [NumValues, NumValues+NumAttrs), and — in the tripartite ablation variant
// — row nodes follow after the attributes. Score slices are indexed by node
// id under the same convention; measures defined only on value nodes (the
// LCC family) return slices of length NumValues.
package bench
